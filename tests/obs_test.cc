/**
 * @file
 * Observability-layer tests (docs/OBSERVABILITY.md): the JSON
 * writer/parser pair, the metrics registry's counters and histograms,
 * the timeline recorder's Chrome trace-event output (well-formed, every
 * duration begin matched by an end per track, bus-track durations equal
 * to BusStats), and reportAllJson agreeing with the live System totals.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "common/json.h"
#include "common/sim_fault.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/report_json.h"
#include "sim/system.h"

namespace pim {
namespace {

SystemConfig
smallSystem(std::uint32_t pes = 4)
{
    SystemConfig config;
    config.numPes = pes;
    config.cache.geometry = {4, 2, 8};
    config.memoryWords = 1 << 20;
    return config;
}

/** Drive a small multi-PE workload touching most event kinds. */
void
driveWorkload(System& sys)
{
    const std::uint32_t pes = sys.numPes();
    // Shared reads/writes with cross-PE conflicts (fills, invalidates,
    // state transitions, swap-outs once the tiny cache overflows).
    for (Addr a = 0; a < 256; a += 2) {
        sys.access(a % pes, MemOp::W, a, Area::Heap, a);
        sys.access((a + 1) % pes, MemOp::R, a, Area::Heap, 0);
    }
    // A lock handoff: LR by one PE, a competing LR that parks, UW wake.
    ASSERT_FALSE(sys.access(0, MemOp::LR, 512, Area::Heap, 0).lockWait);
    ASSERT_TRUE(sys.access(1, MemOp::LR, 512, Area::Heap, 0).lockWait);
    sys.access(0, MemOp::UW, 512, Area::Heap, 7);
    ASSERT_FALSE(sys.access(1, MemOp::LR, 512, Area::Heap, 0).lockWait);
    sys.access(1, MemOp::U, 512, Area::Heap, 0);
    // Producer/consumer record flow: DW then ER/RP (purges, C2C fills).
    for (Addr a = 1024; a < 1032; ++a)
        sys.access(2, MemOp::DW, a, Area::Goal, a);
    for (Addr a = 1024; a < 1032; ++a) {
        sys.access(3, a + 1 == 1032 ? MemOp::RP : MemOp::ER, a, Area::Goal,
                   0);
    }
}

// ---------------------------------------------------------------- JSON

TEST(Json, WriterParserRoundTrip)
{
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("text", "quote\"back\\slash\nnewline");
    json.field("count", std::uint64_t{42});
    json.field("negative", std::int64_t{-7});
    json.field("ratio", 0.25);
    json.field("flag", true);
    json.key("missing");
    json.valueNull();
    json.key("list");
    json.beginArray();
    json.value(std::uint64_t{1});
    json.value(std::uint64_t{2});
    json.beginObject();
    json.field("nested", "yes");
    json.endObject();
    json.endArray();
    json.endObject();

    const JsonValue doc = JsonValue::parse(os.str());
    EXPECT_EQ(doc.at("text").asString(), "quote\"back\\slash\nnewline");
    EXPECT_EQ(doc.at("count").asNumber(), 42.0);
    EXPECT_EQ(doc.at("negative").asNumber(), -7.0);
    EXPECT_EQ(doc.at("ratio").asNumber(), 0.25);
    EXPECT_TRUE(doc.at("flag").asBool());
    EXPECT_TRUE(doc.at("missing").isNull());
    EXPECT_EQ(doc.at("list").size(), 3u);
    EXPECT_EQ(doc.at("list").at(2).at("nested").asString(), "yes");
}

TEST(Json, RawValueKeepsCommasCorrect)
{
    // rawValue must participate in comma/key bookkeeping: two raw values
    // in a row, then a normal field, must still parse.
    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/false);
    json.beginObject();
    json.key("a");
    json.rawValue("{\"x\":1}");
    json.key("b");
    json.rawValue("2");
    json.field("c", std::uint64_t{3});
    json.endObject();

    const JsonValue doc = JsonValue::parse(os.str());
    EXPECT_EQ(doc.at("a").at("x").asNumber(), 1.0);
    EXPECT_EQ(doc.at("b").asNumber(), 2.0);
    EXPECT_EQ(doc.at("c").asNumber(), 3.0);
}

TEST(Json, ParserRejectsMalformed)
{
    EXPECT_THROW(JsonValue::parse("{\"a\": }"), SimFault);
    EXPECT_THROW(JsonValue::parse("[1, 2"), SimFault);
    EXPECT_THROW(JsonValue::parse("{} trailing"), SimFault);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), SimFault);
    try {
        JsonValue::parse("nope");
        FAIL() << "expected SimFault";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Parse);
    }
}

TEST(Json, FindPath)
{
    const JsonValue doc = JsonValue::parse(
        "{\"rows\": [{\"bench\": \"Tri\", \"v\": 1}, {\"v\": 2}],"
        " \"meta\": {\"pes\": 8}}");
    ASSERT_NE(doc.findPath("rows.0.bench"), nullptr);
    EXPECT_EQ(doc.findPath("rows.0.bench")->asString(), "Tri");
    EXPECT_EQ(doc.findPath("rows.1.v")->asNumber(), 2.0);
    EXPECT_EQ(doc.findPath("meta.pes")->asNumber(), 8.0);
    EXPECT_EQ(doc.findPath("rows.2.v"), nullptr);
    EXPECT_EQ(doc.findPath("meta.absent"), nullptr);
    EXPECT_EQ(doc.findPath("rows.notanindex"), nullptr);
}

// ----------------------------------------------------------- Histogram

TEST(Histogram, PowerOfTwoBuckets)
{
    Histogram h;
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(4);
    h.record(1u << 16);
    h.record(1u << 20); // overflow bucket

    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + (1u << 16) + (1u << 20));
    EXPECT_EQ(h.max(), 1u << 20);
    EXPECT_EQ(h.bucket(0), 1u); // the exact zero
    EXPECT_EQ(h.bucket(1), 1u); // [1, 2)
    EXPECT_EQ(h.bucket(2), 2u); // [2, 4)
    EXPECT_EQ(h.bucket(3), 1u); // [4, 8)
    EXPECT_EQ(h.bucket(17), 1u); // [65536, 131072)
    EXPECT_EQ(h.bucket(Histogram::kNumBuckets - 1), 1u); // >= 2^17
    EXPECT_EQ(Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Histogram::bucketLow(1), 1u);
    EXPECT_EQ(Histogram::bucketLow(5), 16u);
}

// ------------------------------------------------------------- Metrics

TEST(Metrics, CountersMatchSystemStats)
{
    System sys(smallSystem());
    MetricsRegistry metrics;
    sys.addEventSink(&metrics);
    driveWorkload(sys);

    // Every access reported exactly once (lock-wait retries included in
    // access.total; completed ones only in the refStats).
    EXPECT_EQ(metrics.counter("access.total"),
              sys.refStats().total() + metrics.counter("access.lock_waited"));

    // One onBusTransaction per accounted bus transaction.
    const BusStats& bus = sys.bus().stats();
    std::uint64_t trans = 0;
    for (int p = 0; p < kNumBusPatterns; ++p)
        trans += bus.transByPattern[p];
    EXPECT_EQ(metrics.counter("bus.transactions"), trans);
    EXPECT_EQ(metrics.counter("bus.cycles"),
              static_cast<std::uint64_t>(bus.totalCycles));

    // Fill split covers all misses that moved data.
    EXPECT_GT(metrics.counter("fills.memory"), 0u);
    EXPECT_GT(metrics.counter("fills.cache_to_cache"), 0u);

    // The lock handoff parked PE 1 once and woke it once.
    EXPECT_EQ(metrics.counter("locks.parks"), 1u);
    EXPECT_EQ(metrics.counter("locks.wakes"), 1u);
    const Histogram* wait = metrics.histogram("locks.wait_cycles");
    ASSERT_NE(wait, nullptr);
    EXPECT_EQ(wait->count(), 1u);

    // Bus acquisition latency histogram saw every transaction.
    const Histogram* acq = metrics.histogram("bus.acquire_wait_cycles");
    ASSERT_NE(acq, nullptr);
    EXPECT_EQ(acq->count(), trans);
}

TEST(Metrics, JsonSerialization)
{
    System sys(smallSystem());
    MetricsRegistry metrics;
    sys.addEventSink(&metrics);
    driveWorkload(sys);

    std::ostringstream os;
    metrics.write(os);
    const JsonValue doc = JsonValue::parse(os.str());
    ASSERT_TRUE(doc.has("counters"));
    ASSERT_TRUE(doc.has("histograms"));
    EXPECT_EQ(doc.at("counters").at("bus.transactions").asNumber(),
              static_cast<double>(metrics.counter("bus.transactions")));
    const JsonValue& acq =
        doc.at("histograms").at("bus.acquire_wait_cycles");
    EXPECT_EQ(acq.at("count").asNumber(),
              static_cast<double>(
                  metrics.histogram("bus.acquire_wait_cycles")->count()));
    EXPECT_TRUE(acq.at("buckets").isArray());
}

TEST(Metrics, ClearResets)
{
    System sys(smallSystem());
    MetricsRegistry metrics;
    sys.addEventSink(&metrics);
    sys.access(0, MemOp::R, 64, Area::Heap, 0);
    EXPECT_GT(metrics.counter("access.total"), 0u);
    metrics.clear();
    EXPECT_EQ(metrics.counter("access.total"), 0u);
    EXPECT_EQ(metrics.histogram("bus.acquire_wait_cycles"), nullptr);
}

TEST(Histogram, MergeAddsBucketsCountSumMax)
{
    Histogram a;
    a.record(1);
    a.record(4);
    Histogram b;
    b.record(4);
    b.record(1u << 20);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.sum(), 1u + 4 + 4 + (1u << 20));
    EXPECT_EQ(a.max(), 1u << 20);
    EXPECT_EQ(a.bucket(1), 1u); // [1, 2)
    EXPECT_EQ(a.bucket(3), 2u); // [4, 8) from both sides
}

/**
 * The sweep aggregation model: two isolated runs, each into its own
 * registry, merged afterwards — totals must equal one registry that
 * saw both runs.
 */
TEST(Metrics, MergeEqualsSharedRegistry)
{
    MetricsRegistry first, second, merged;
    {
        System sys(smallSystem());
        MetricsRegistry both;
        sys.addEventSink(&first);
        sys.addEventSink(&both);
        driveWorkload(sys);
        merged.merge(both);
    }
    {
        // A different, smaller workload so the two registries disagree.
        System sys(smallSystem());
        MetricsRegistry both;
        sys.addEventSink(&second);
        sys.addEventSink(&both);
        for (Addr a = 0; a < 64; ++a)
            sys.access(a % 2, a % 3 == 0 ? MemOp::W : MemOp::R, a,
                       Area::Heap, a);
        merged.merge(both);
    }

    MetricsRegistry folded;
    folded.merge(first);
    folded.merge(second);
    EXPECT_EQ(folded.counters(), merged.counters());
    for (const auto& [name, count] : folded.counters()) {
        EXPECT_EQ(folded.counter(name),
                  first.counter(name) + second.counter(name))
            << name;
    }
    const Histogram* h = folded.histogram("bus.acquire_wait_cycles");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(),
              first.histogram("bus.acquire_wait_cycles")->count() +
                  second.histogram("bus.acquire_wait_cycles")->count());
}

// ------------------------------------------------------------ Timeline

TEST(Timeline, RoundTripWellFormed)
{
    System sys(smallSystem());
    TimelineRecorder timeline;
    sys.addEventSink(&timeline);
    driveWorkload(sys);

    std::ostringstream os;
    timeline.write(os);
    const JsonValue doc = JsonValue::parse(os.str());
    ASSERT_TRUE(doc.has("traceEvents"));
    const auto& events = doc.at("traceEvents").asArray();
    ASSERT_GT(events.size(), 0u);

    // Track metadata names the bus track and one track per PE.
    std::map<double, std::string> track_names;
    for (const JsonValue& event : events) {
        if (event.at("ph").asString() == "M") {
            track_names[event.at("tid").asNumber()] =
                event.at("args").at("name").asString();
        }
    }
    EXPECT_EQ(track_names[0], "bus");
    EXPECT_EQ(track_names[1], "pe0");
    EXPECT_EQ(track_names[4], "pe3");

    // Every event is well-formed; B/E nest and balance per track, with
    // non-decreasing timestamps; bus-track durations sum to BusStats.
    std::map<double, std::vector<std::string>> open;
    std::map<double, double> last_ts;
    for (const JsonValue& event : events) {
        const std::string ph = event.at("ph").asString();
        if (ph == "M")
            continue;
        ASSERT_TRUE(event.has("name"));
        ASSERT_TRUE(event.has("ts"));
        const double tid = event.at("tid").asNumber();
        const double ts = event.at("ts").asNumber();
        EXPECT_GE(ts, last_ts[tid]) << "timestamps regress on tid " << tid;
        last_ts[tid] = ts;
        if (ph == "B") {
            open[tid].push_back(event.at("name").asString());
        } else if (ph == "E") {
            ASSERT_FALSE(open[tid].empty())
                << "E without B on tid " << tid;
            EXPECT_EQ(open[tid].back(), event.at("name").asString())
                << "mismatched B/E nesting on tid " << tid;
            open[tid].pop_back();
        } else {
            EXPECT_EQ(ph, "i");
        }
    }
    for (const auto& [tid, stack] : open)
        EXPECT_TRUE(stack.empty()) << "unclosed B on tid " << tid;

    // The bus track is one flat sequence of transaction durations whose
    // total equals the accounted bus cycles.
    double bus_busy = 0;
    double prev_b = -1;
    for (const JsonValue& event : events) {
        if (event.at("ph").asString() == "M" ||
            event.at("tid").asNumber() != 0)
            continue;
        const std::string ph = event.at("ph").asString();
        if (ph == "B") {
            ASSERT_LT(prev_b, 0) << "nested bus durations";
            prev_b = event.at("ts").asNumber();
        } else if (ph == "E") {
            ASSERT_GE(prev_b, 0);
            bus_busy += event.at("ts").asNumber() - prev_b;
            prev_b = -1;
        }
    }
    EXPECT_EQ(bus_busy,
              static_cast<double>(sys.bus().stats().totalCycles));
}

TEST(Timeline, AutoClosesAbortedDurations)
{
    TimelineRecorder timeline;
    timeline.onAccessBegin(0, MemOp::R, 8, Area::Heap, 10);
    // No matching end: write() must close it so the document stays
    // loadable.
    std::ostringstream os;
    timeline.write(os);
    const JsonValue doc = JsonValue::parse(os.str());
    int b = 0;
    int e = 0;
    for (const JsonValue& event : doc.at("traceEvents").asArray()) {
        if (event.at("ph").asString() == "B")
            ++b;
        if (event.at("ph").asString() == "E")
            ++e;
    }
    EXPECT_EQ(b, 1);
    EXPECT_EQ(e, 1);
}

// --------------------------------------------------------- reportAllJson

TEST(ReportJson, TotalsMatchSystem)
{
    System sys(smallSystem());
    driveWorkload(sys);

    const JsonValue doc = JsonValue::parse(reportAllJson(sys));
    EXPECT_EQ(doc.at("num_pes").asNumber(), 4.0);
    EXPECT_EQ(doc.at("areas").at("total_refs").asNumber(),
              static_cast<double>(sys.refStats().total()));
    EXPECT_EQ(doc.at("areas").at("total_bus_cycles").asNumber(),
              static_cast<double>(sys.bus().stats().totalCycles));

    const CacheStats cache = sys.totalCacheStats();
    EXPECT_EQ(doc.at("cache_summary").at("accesses").asNumber(),
              static_cast<double>(cache.accesses));
    EXPECT_EQ(doc.at("cache_summary").at("misses").asNumber(),
              static_cast<double>(cache.misses));
    EXPECT_EQ(doc.at("locks").at("lr_count").asNumber(),
              static_cast<double>(cache.lrCount));

    // Per-pattern transactions must sum to the bus total.
    double pattern_cycles = 0;
    for (const JsonValue& row :
         doc.at("bus_patterns").at("by_pattern").asArray())
        pattern_cycles += row.at("cycles").asNumber();
    EXPECT_EQ(pattern_cycles,
              static_cast<double>(sys.bus().stats().totalCycles));
}

// ------------------------------------------------- zero-overhead wiring

TEST(EventSink, NoSinkMeansNoObservableChange)
{
    // Two identical runs, one with a sink: same stats, same data.
    System plain(smallSystem());
    System observed(smallSystem());
    MetricsRegistry metrics;
    TimelineRecorder timeline;
    observed.addEventSink(&metrics);
    observed.addEventSink(&timeline);

    driveWorkload(plain);
    driveWorkload(observed);

    EXPECT_EQ(plain.bus().stats().totalCycles,
              observed.bus().stats().totalCycles);
    EXPECT_EQ(plain.makespan(), observed.makespan());
    EXPECT_EQ(plain.totalCacheStats().misses,
              observed.totalCacheStats().misses);
    EXPECT_GT(timeline.eventCount(), 0u);
}

} // namespace
} // namespace pim
