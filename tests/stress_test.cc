/**
 * @file
 * Seed-replay stress harness tests: bit-identical determinism, fault
 * class detection under injection, and a clean audited run.
 */

#include <gtest/gtest.h>

#include "common/json.h"
#include "sim/stress.h"

namespace pim {
namespace {

StressConfig
quickConfig(std::uint64_t seed)
{
    StressConfig config;
    config.seed = seed;
    config.numPes = 4;
    config.steps = 3000;
    config.spanWords = 1024;
    return config;
}

TEST(Stress, CleanRunPassesTheAuditor)
{
    const StressResult result = runStress(quickConfig(11));
    EXPECT_FALSE(result.failed) << result.message;
    EXPECT_GE(result.completedRefs, 3000u);
    EXPECT_GT(result.auditChecks, 0u);
    EXPECT_GT(result.makespan, 0u);
}

TEST(Stress, SameConfigSameFingerprint)
{
    const StressResult a = runStress(quickConfig(42));
    const StressResult b = runStress(quickConfig(42));
    EXPECT_FALSE(a.failed) << a.message;
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.completedRefs, b.completedRefs);
    EXPECT_EQ(a.makespan, b.makespan);

    const StressResult c = runStress(quickConfig(43));
    EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(Stress, GeometryStringRoundTrips)
{
    StressConfig config;
    config.setGeometry("8x4x128");
    EXPECT_EQ(config.blockWords, 8u);
    EXPECT_EQ(config.ways, 4u);
    EXPECT_EQ(config.sets, 128u);
    EXPECT_EQ(config.geometryString(), "8x4x128");
    EXPECT_THROW(config.setGeometry("8x4"), SimFault);
    EXPECT_THROW(config.setGeometry("axbxc"), SimFault);
}

TEST(Stress, CorruptionIsDetectedAndReplays)
{
    StressConfig config = quickConfig(7);
    config.planSpec = "corrupt_word:p=0.01";
    const StressResult first = runStress(config);
    ASSERT_TRUE(first.failed);
    EXPECT_TRUE(first.kind == SimFaultKind::Corruption ||
                first.kind == SimFaultKind::Protocol)
        << first.message;
    EXPECT_NE(first.replayLine.find("--seed=7"), std::string::npos)
        << first.replayLine;
    EXPECT_NE(first.replayLine.find("--plan=corrupt_word"),
              std::string::npos);

    // The replay line's content is the config itself: rerunning the
    // same config must reproduce the identical failure.
    const StressResult again = runStress(config);
    ASSERT_TRUE(again.failed);
    EXPECT_EQ(again.kind, first.kind);
    EXPECT_EQ(again.message, first.message);
    EXPECT_EQ(again.completedRefs, first.completedRefs);
}

TEST(Stress, LostUnlockIsDetectedAsDeadlockOrStarvation)
{
    StressConfig config = quickConfig(5);
    config.planSpec = "lost_ul:p=1";
    config.lockPct = 40;
    const StressResult result = runStress(config);
    ASSERT_TRUE(result.failed);
    EXPECT_TRUE(result.kind == SimFaultKind::Deadlock ||
                result.kind == SimFaultKind::Starvation)
        << result.message;

    const StressResult again = runStress(config);
    EXPECT_EQ(again.kind, result.kind);
    EXPECT_EQ(again.message, result.message);
}

TEST(Stress, StuckLwaitIsDetectedAsLivelock)
{
    StressConfig config = quickConfig(9);
    config.planSpec = "stuck_lwait:p=1,spurious_wakeup:p=0.5";
    config.lockPct = 40;
    config.watchdog.livelockRetries = 50;
    const StressResult result = runStress(config);
    ASSERT_TRUE(result.failed);
    EXPECT_TRUE(result.kind == SimFaultKind::Livelock ||
                result.kind == SimFaultKind::Deadlock ||
                result.kind == SimFaultKind::Starvation)
        << result.message;
    EXPECT_FALSE(result.replayLine.empty());

    const StressResult again = runStress(config);
    EXPECT_EQ(again.kind, result.kind);
    EXPECT_EQ(again.message, result.message);
}

TEST(Stress, ForcedMissDroppingDirtyDataIsCaught)
{
    // A forced miss silently drops the copy without copy-back, so the
    // first one that hits a dirty block is a detectable corruption.
    StressConfig config = quickConfig(3);
    config.planSpec = "forced_miss:p=0.05";
    const StressResult result = runStress(config);
    ASSERT_TRUE(result.failed);
    EXPECT_TRUE(result.kind == SimFaultKind::Corruption ||
                result.kind == SimFaultKind::Protocol)
        << result.message;
}

TEST(Stress, TimelineDumpedOnInjectedFault)
{
    // --timeline-out must leave a parseable Chrome trace-event document
    // behind even when the run dies on an injected fault, so the cycles
    // leading up to the failure can be inspected in Perfetto.
    StressConfig config = quickConfig(7);
    config.planSpec = "corrupt_word:p=0.01";
    config.timelineOut = ::testing::TempDir() + "stress_fault_timeline.json";
    const StressResult result = runStress(config);
    ASSERT_TRUE(result.failed);
    EXPECT_EQ(result.timelinePath, config.timelineOut);
    EXPECT_GT(result.timelineEvents, 0u);

    const JsonValue doc = JsonValue::parseFile(result.timelinePath);
    ASSERT_TRUE(doc.has("traceEvents"));
    EXPECT_GT(doc.at("traceEvents").size(), 0u);
    // write() auto-closes whatever the fault left open, so begins and
    // ends balance even for the aborted run.
    std::uint64_t begins = 0;
    std::uint64_t ends = 0;
    for (const JsonValue& event : doc.at("traceEvents").asArray()) {
        if (event.at("ph").asString() == "B")
            ++begins;
        else if (event.at("ph").asString() == "E")
            ++ends;
    }
    EXPECT_EQ(begins, ends);
}

TEST(Stress, TimelineWrittenForCleanRunToo)
{
    StressConfig config = quickConfig(11);
    config.timelineOut = ::testing::TempDir() + "stress_clean_timeline.json";
    const StressResult result = runStress(config);
    EXPECT_FALSE(result.failed) << result.message;
    EXPECT_EQ(result.timelinePath, config.timelineOut);
    EXPECT_GT(result.timelineEvents, 0u);
    EXPECT_TRUE(
        JsonValue::parseFile(result.timelinePath).has("traceEvents"));
}

TEST(Stress, InjectorSummaryIsReported)
{
    StressConfig config = quickConfig(3);
    // An armed-but-never-fired rule still counts its opportunities.
    config.planSpec = "forced_miss:after=999999999";
    const StressResult result = runStress(config);
    EXPECT_FALSE(result.failed) << result.message;
    EXPECT_NE(result.injectorSummary.find("forced_miss=0/"),
              std::string::npos)
        << result.injectorSummary;
}

} // namespace
} // namespace pim
