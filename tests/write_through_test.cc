/**
 * @file
 * Tests for the write-through baseline protocol (Goodman's motivation
 * for copy-back): every write is a bus transaction, memory is always
 * current, blocks are never dirty, and the optimized commands demote to
 * plain reads/writes. Logic programs' high write frequency makes this
 * baseline far more expensive — the premise of the paper's copy-back
 * design.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "kl1_test_util.h"
#include "sim/system.h"

namespace pim {
namespace {

SystemConfig
wtSystem(std::uint32_t pes = 4)
{
    SystemConfig config;
    config.numPes = pes;
    config.cache.geometry = {4, 2, 8};
    config.cache.writeThrough = true;
    config.memoryWords = 1 << 20;
    return config;
}

class WriteThrough : public ::testing::Test
{
  protected:
    WriteThrough() : sys_(wtSystem()) {}

    Word
    op(PeId pe, MemOp memop, Addr addr, Word wdata = 0)
    {
        const System::Access result =
            sys_.access(pe, memop, addr, Area::Heap, wdata);
        EXPECT_FALSE(result.lockWait);
        return result.data;
    }

    System sys_;
};

TEST_F(WriteThrough, EveryWriteReachesMemoryImmediately)
{
    op(0, MemOp::W, 100, 7);
    EXPECT_EQ(sys_.memory().read(100), 7u);
    op(0, MemOp::W, 100, 8);
    EXPECT_EQ(sys_.memory().read(100), 8u);
    EXPECT_EQ(sys_.bus().stats().memoryWrites, 2u);
}

TEST_F(WriteThrough, WriteCostsWordTransaction)
{
    const Cycles before = sys_.bus().stats().totalCycles;
    op(0, MemOp::W, 100, 7);
    EXPECT_EQ(sys_.bus().stats().totalCycles - before, 2u);
}

TEST_F(WriteThrough, WriteMissDoesNotAllocate)
{
    op(0, MemOp::W, 100, 7);
    EXPECT_FALSE(sys_.cache(0).present(100));
    EXPECT_EQ(op(0, MemOp::R, 100), 7u); // fetched from memory
    EXPECT_TRUE(sys_.cache(0).present(100));
}

TEST_F(WriteThrough, WriteInvalidatesRemoteCopies)
{
    op(0, MemOp::R, 100);
    op(1, MemOp::R, 100);
    op(0, MemOp::W, 100, 5);
    EXPECT_EQ(sys_.cache(1).stateOf(100), CacheState::INV);
    EXPECT_EQ(op(1, MemOp::R, 100), 5u);
}

TEST_F(WriteThrough, BlocksAreNeverDirty)
{
    op(0, MemOp::R, 100);
    op(0, MemOp::W, 100, 3);
    EXPECT_FALSE(cacheStateDirty(sys_.cache(0).stateOf(100)));
    // Eviction of the block causes no swap-out.
    op(0, MemOp::R, 228);
    op(0, MemOp::R, 356);
    EXPECT_EQ(sys_.totalCacheStats().swapOuts, 0u);
}

TEST_F(WriteThrough, OptimizedCommandsDemote)
{
    op(0, MemOp::DW, 100, 9); // acts as W: straight to memory
    EXPECT_EQ(sys_.memory().read(100), 9u);
    EXPECT_EQ(sys_.totalCacheStats().dwAllocNoFetch, 0u);
    op(1, MemOp::ER, 100); // acts as R: supplier keeps its copy
    op(1, MemOp::RP, 100);
    EXPECT_EQ(sys_.totalCacheStats().purges, 0u);
}

TEST_F(WriteThrough, LocksStillWork)
{
    op(0, MemOp::LR, 100);
    const System::Access blocked =
        sys_.access(1, MemOp::R, 100, Area::Heap, 0);
    EXPECT_TRUE(blocked.lockWait);
    op(0, MemOp::UW, 100, 42);
    EXPECT_EQ(sys_.memory().read(100), 42u); // written through
    EXPECT_FALSE(sys_.parked(1));
    EXPECT_EQ(op(1, MemOp::R, 100), 42u);
}

TEST_F(WriteThrough, UnlockWriteWhileCachedKeepsExclusivity)
{
    op(0, MemOp::R, 100); // EC
    op(0, MemOp::LR, 100);
    op(0, MemOp::UW, 100, 1);
    EXPECT_EQ(sys_.cache(0).stateOf(100), CacheState::EC);
    // The next LR is a zero-cost exclusive hit.
    const Cycles before = sys_.bus().stats().totalCycles;
    op(0, MemOp::LR, 100);
    EXPECT_EQ(sys_.bus().stats().totalCycles, before);
    op(0, MemOp::U, 100);
}

TEST_F(WriteThrough, ShadowConsistencyUnderRandomTraffic)
{
    Rng rng(21);
    std::map<Addr, Word> shadow;
    for (int step = 0; step < 6000; ++step) {
        const PeId pe = static_cast<PeId>(rng.below(4));
        const Addr addr = rng.below(256);
        if (rng.chance(40, 100)) {
            const Word value = step + 1;
            op(pe, MemOp::W, addr, value);
            shadow[addr] = value;
            // Memory is always current under write-through.
            ASSERT_EQ(sys_.memory().read(addr), value);
        } else {
            ASSERT_EQ(op(pe, MemOp::R, addr),
                      shadow.count(addr) ? shadow[addr] : 0u);
        }
    }
}

TEST(WriteThroughKl1, ProgramsRunCorrectly)
{
    using namespace pim::kl1;
    using pim::kl1::testutil::smallConfig;
    Kl1Config config = smallConfig(4);
    config.cache.writeThrough = true;
    const auto out = testutil::run(
        "append([], Y, Z) :- true | Z = Y.\n"
        "append([H|T], Y, Z) :- true | Z = [H|W], append(T, Y, W).\n"
        "main(R) :- true | append([1,2,3], [4], R).\n",
        "main(R).", config);
    EXPECT_EQ(out.bindings.at("R"), "[1,2,3,4]");
}

TEST(WriteThroughKl1, CopybackBeatsWriteThrough)
{
    // The paper's premise (via Goodman and Tick): logic programs write
    // so much that write-through traffic dwarfs copy-back traffic.
    using namespace pim::kl1;
    using pim::kl1::testutil::smallConfig;
    const char* src =
        "build(0, L) :- true | L = [].\n"
        "build(N, L) :- N > 0 | N1 := N - 1, L = [N|T], build(N1, T).\n"
        "rev([], A, R) :- true | R = A.\n"
        "rev([X|Xs], A, R) :- true | rev(Xs, [X|A], R).\n"
        "len([], N, R) :- true | R = N.\n"
        "len([_|T], N, R) :- true | N1 := N + 1, len(T, N1, R).\n"
        "main(R) :- true | build(400, L), rev(L, [], M), len(M, 0, R).\n";
    Kl1Config copyback = smallConfig(2);
    Kl1Config wt = smallConfig(2);
    wt.cache.writeThrough = true;
    const auto cb_out = testutil::run(src, "main(R).", copyback);
    const auto wt_out = testutil::run(src, "main(R).", wt);
    EXPECT_EQ(cb_out.bindings.at("R"), wt_out.bindings.at("R"));
    EXPECT_GT(wt_out.bus.totalCycles, 2 * cb_out.bus.totalCycles);
}

} // namespace
} // namespace pim
