/**
 * @file
 * Property tests: random multi-PE traffic through the coherent caches
 * must match a shadow sequentially-consistent memory, and the protocol
 * invariants (single dirty owner, no exclusive+shared mix, copy equality)
 * must hold at every step — across geometries, PE counts and both the
 * PIM and the Illinois-style protocol variants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "sim/system.h"

namespace pim {
namespace {

struct PropParam {
    std::uint32_t pes;
    std::uint32_t blockWords;
    std::uint32_t ways;
    std::uint32_t sets;
    bool illinois;
    std::uint64_t seed;
};

std::string
paramName(const ::testing::TestParamInfo<PropParam>& info)
{
    const PropParam& p = info.param;
    return "pes" + std::to_string(p.pes) + "_b" +
           std::to_string(p.blockWords) + "_w" + std::to_string(p.ways) +
           "_s" + std::to_string(p.sets) +
           (p.illinois ? "_illinois" : "_pim") + "_seed" +
           std::to_string(p.seed);
}

class CoherenceProp : public ::testing::TestWithParam<PropParam>
{
  protected:
    void
    SetUp() override
    {
        const PropParam& p = GetParam();
        SystemConfig config;
        config.numPes = p.pes;
        config.cache.geometry = {p.blockWords, p.ways, p.sets};
        config.cache.copybackOnShare = p.illinois;
        config.memoryWords = 1 << 20;
        sys_ = std::make_unique<System>(config);
        rng_ = std::make_unique<Rng>(p.seed);
    }

    /** All valid copies of @p addr's block word must agree; at most one
     *  dirty copy; exclusive excludes all other copies. */
    void
    checkInvariants(Addr addr)
    {
        int dirty = 0;
        int valid = 0;
        int exclusive = 0;
        Word value = 0;
        bool have_value = false;
        for (PeId pe = 0; pe < sys_->numPes(); ++pe) {
            const CacheState state = sys_->cache(pe).stateOf(addr);
            if (state == CacheState::INV)
                continue;
            ++valid;
            if (cacheStateDirty(state))
                ++dirty;
            if (cacheStateExclusive(state))
                ++exclusive;
            const Word copy = sys_->cache(pe).loadValue(addr);
            if (!have_value) {
                value = copy;
                have_value = true;
            } else {
                ASSERT_EQ(copy, value)
                    << "copies of " << addr << " disagree";
            }
        }
        ASSERT_LE(dirty, 1) << "two dirty owners of " << addr;
        if (exclusive > 0) {
            ASSERT_EQ(valid, 1)
                << "exclusive copy of " << addr << " coexists with others";
        }
        if (valid > 0 && dirty == 0) {
            // All copies clean: they must equal shared memory (unless a
            // dirty purge intentionally dropped data, which this workload
            // never does).
            ASSERT_EQ(value, sys_->memory().read(addr));
        }
    }

    std::unique_ptr<System> sys_;
    std::unique_ptr<Rng> rng_;
};

TEST_P(CoherenceProp, RandomReadWriteMatchesShadow)
{
    const std::uint64_t span = 512;
    std::map<Addr, Word> shadow;
    Word next_value = 1;

    const int steps = 12000;
    for (int step = 0; step < steps; ++step) {
        const PeId pe =
            static_cast<PeId>(rng_->below(sys_->numPes()));
        if (sys_->parked(pe))
            continue; // only lock ops park; none here, but be safe
        const Addr addr = rng_->below(span);
        if (rng_->chance(35, 100)) {
            const Word value = next_value++;
            sys_->access(pe, MemOp::W, addr, Area::Heap, value);
            shadow[addr] = value;
        } else {
            const System::Access result =
                sys_->access(pe, MemOp::R, addr, Area::Heap, 0);
            const auto it = shadow.find(addr);
            const Word expected = it == shadow.end() ? 0 : it->second;
            ASSERT_EQ(result.data, expected)
                << "step " << step << " pe" << pe << " addr " << addr;
        }
        if (step % 64 == 0)
            checkInvariants(addr);
    }
    // Final sweep: every touched address still consistent.
    for (const auto& [addr, value] : shadow) {
        checkInvariants(addr);
        const PeId pe = static_cast<PeId>(addr % sys_->numPes());
        ASSERT_EQ(sys_->access(pe, MemOp::R, addr, Area::Heap, 0).data,
                  value);
    }
}

TEST_P(CoherenceProp, RandomLockTrafficMatchesShadow)
{
    const std::uint64_t span = 64; // small span: force real conflicts
    std::map<Addr, Word> shadow;
    // Per-PE pending retry op (set when an access lock-waits).
    struct Pending {
        bool active = false;
        MemOp op = MemOp::R;
        Addr addr = 0;
        Word wdata = 0;
    };
    std::vector<Pending> pending(sys_->numPes());
    // Address each PE currently holds locked (kNoAddr if none).
    std::vector<Addr> held(sys_->numPes(), kNoAddr);
    Word next_value = 1;
    std::uint64_t lock_rejects = 0;

    const int steps = 20000;
    for (int step = 0; step < steps; ++step) {
        const PeId pe =
            static_cast<PeId>(rng_->below(sys_->numPes()));
        if (sys_->parked(pe))
            continue;

        MemOp op;
        Addr addr;
        Word wdata = 0;
        if (pending[pe].active) {
            op = pending[pe].op;
            addr = pending[pe].addr;
            wdata = pending[pe].wdata;
        } else if (held[pe] != kNoAddr) {
            // Always release before anything else: no hold-and-wait.
            op = MemOp::UW;
            addr = held[pe];
            wdata = next_value++;
        } else if (rng_->chance(30, 100)) {
            op = MemOp::LR;
            addr = rng_->below(span);
        } else if (rng_->chance(40, 100)) {
            op = MemOp::W;
            addr = rng_->below(span);
            wdata = next_value++;
        } else {
            op = MemOp::R;
            addr = rng_->below(span);
        }

        const System::Access result =
            sys_->access(pe, op, addr, Area::Heap, wdata);
        if (result.lockWait) {
            ++lock_rejects;
            pending[pe] = {true, op, addr, wdata};
            continue;
        }
        pending[pe].active = false;
        switch (op) {
          case MemOp::LR:
            ASSERT_EQ(result.data,
                      shadow.count(addr) ? shadow[addr] : 0);
            held[pe] = addr;
            break;
          case MemOp::UW:
            shadow[addr] = wdata;
            held[pe] = kNoAddr;
            break;
          case MemOp::W:
            shadow[addr] = wdata;
            break;
          case MemOp::R:
            ASSERT_EQ(result.data,
                      shadow.count(addr) ? shadow[addr] : 0);
            break;
          default:
            break;
        }
        if (step % 128 == 0)
            checkInvariants(addr);
    }
    // Drain held locks so the run ends clean.
    for (PeId pe = 0; pe < sys_->numPes(); ++pe) {
        if (held[pe] != kNoAddr)
            sys_->access(pe, MemOp::U, held[pe], Area::Heap, 0);
    }
    // With a 64-word span and this much locking, conflicts must occur on
    // multi-PE systems (sanity that the test exercises the LWAIT path).
    if (sys_->numPes() >= 4) {
        EXPECT_GT(lock_rejects, 0u);
    }
}

TEST_P(CoherenceProp, ProducerConsumerRecordsIntact)
{
    // Write-once/read-once records handed between random PE pairs using
    // the optimized commands; every word must arrive intact even though
    // the blocks are purged and never written back.
    // Records are whole blocks (and at least 8 words) so that distinct
    // rounds never share a block: sharing would break the write-once /
    // read-once contract that DW/ER/RP rely on.
    const std::uint32_t record_words =
        std::max<std::uint32_t>(GetParam().blockWords, 8);
    Addr cursor = 4096; // fresh territory, block aligned
    for (int round = 0; round < 300; ++round) {
        const PeId producer =
            static_cast<PeId>(rng_->below(sys_->numPes()));
        PeId consumer =
            static_cast<PeId>(rng_->below(sys_->numPes()));
        if (consumer == producer)
            consumer = (consumer + 1) % sys_->numPes();
        const Addr rec = cursor;
        cursor += record_words;
        for (std::uint32_t w = 0; w < record_words; ++w) {
            sys_->access(producer, MemOp::DW, rec + w, Area::Goal,
                         0xbeef0000u + round * 64 + w);
        }
        for (std::uint32_t w = 0; w < record_words; ++w) {
            const MemOp op =
                w + 1 == record_words ? MemOp::RP : MemOp::ER;
            const System::Access got =
                sys_->access(consumer, op, rec + w, Area::Goal, 0);
            ASSERT_FALSE(got.lockWait);
            ASSERT_EQ(got.data, 0xbeef0000u + round * 64 + w)
                << "round " << round << " word " << w;
        }
    }
    // The contract was respected: no stale fetches anywhere.
    EXPECT_EQ(sys_->bus().stats().staleFetches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoherenceProp,
    ::testing::Values(
        PropParam{2, 4, 4, 16, false, 1},
        PropParam{4, 4, 2, 8, false, 2},
        PropParam{8, 4, 4, 16, false, 3},
        PropParam{4, 2, 2, 16, false, 4},
        PropParam{4, 8, 2, 8, false, 5},
        PropParam{4, 4, 1, 16, false, 6},
        PropParam{3, 4, 4, 4, false, 7},
        PropParam{4, 4, 2, 8, true, 8},
        PropParam{8, 4, 4, 16, true, 9},
        PropParam{2, 16, 2, 4, false, 10}),
    paramName);

} // namespace
} // namespace pim
