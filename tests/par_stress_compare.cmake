# Stress-harness parallel-core acceptance (ctest `par` label,
# docs/ROBUSTNESS.md): a pim_stress run must be bit-identical for any
# --par-jobs value — the stress System always degrades the parallel
# core to its serialized-epoch mode — both on a clean run and under a
# fault plan (fault sites fire at epoch boundaries, so the detected
# fault, completed-reference count and replay line must all agree).
#
# Usage:
#   cmake -DSTRESS=<pim_stress path> -DWORK=<scratch dir>
#         -P par_stress_compare.cmake

foreach(var STRESS WORK)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "par_stress_compare.cmake: ${var} is required")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

set(clean_flags --seed=3 --steps=8000 --pes=6 --lock-pct=25 --opt-pct=20
    --cluster-size=2 --hop-cycles=2)
set(fault_flags --seed=7 --steps=8000 --plan=corrupt_word:p=0.002
    --expect-fault)

foreach(jobs 0 4)
    execute_process(COMMAND ${STRESS} ${clean_flags} --par-jobs=${jobs}
                    OUTPUT_FILE ${WORK}/clean_j${jobs}.txt
                    RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "par-stress: clean run (par-jobs=${jobs}) exited ${rc}")
    endif()
    execute_process(COMMAND ${STRESS} ${fault_flags} --par-jobs=${jobs}
                    OUTPUT_FILE ${WORK}/fault_j${jobs}.txt
                    RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "par-stress: fault run (par-jobs=${jobs}) exited ${rc} "
                "(expected a detected fault)")
    endif()
endforeach()

foreach(case clean fault)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            ${WORK}/${case}_j0.txt ${WORK}/${case}_j4.txt
                    RESULT_VARIABLE cmp_rc)
    if(NOT cmp_rc EQUAL 0)
        find_program(DIFF_TOOL diff)
        if(DIFF_TOOL)
            execute_process(COMMAND ${DIFF_TOOL} -u ${WORK}/${case}_j0.txt
                                    ${WORK}/${case}_j4.txt
                            OUTPUT_VARIABLE diff_text)
            message(STATUS "diff (${case}, par-jobs 0 vs 4):\n${diff_text}")
        endif()
        message(FATAL_ERROR
                "par-stress: ${case} run is NOT bit-identical across "
                "--par-jobs values")
    endif()
endforeach()
message(STATUS "par-stress: clean and fault runs bit-identical for "
               "--par-jobs 0 and 4")
