/**
 * @file
 * Exhaustive two-PE state-transition table for the PIM protocol: for
 * every (local state, remote state, operation) combination, drive the
 * caches into the initial states and verify the resulting pair of
 * states against the expected transition (derived from paper Section 3
 * and Matsumoto [10]).
 */

#include <gtest/gtest.h>

#include <optional>

#include "sim/system.h"

namespace pim {
namespace {

/** Initial state to set up in one cache (nullopt = not present). */
using Init = std::optional<CacheState>;

struct Transition {
    Init local;           ///< pe0's initial state for the block.
    Init remote;          ///< pe1's initial state for the block.
    MemOp op;             ///< Operation pe0 performs.
    CacheState localAfter;
    CacheState remoteAfter; ///< INV also covers "not present".
};

/**
 * Drive a fresh 2-PE system so that pe0/pe1 hold the target block in
 * the requested states. Uses a scratch PE (pe2) to create shared /
 * shared-modified combinations.
 */
class TransitionDriver
{
  public:
    TransitionDriver()
    {
        SystemConfig config;
        config.numPes = 3;
        config.cache.geometry = {4, 2, 8};
        config.memoryWords = 1 << 20;
        sys_ = std::make_unique<System>(config);
    }

    static constexpr Addr kAddr = 100;

    void
    setup(Init local, Init remote)
    {
        // Construct remote (pe1) first, then local (pe0), then repair
        // the remote state if constructing local disturbed it.
        construct(1, remote);
        construct(0, local);
        if (remote.has_value() &&
            sys_->cache(1).stateOf(kAddr) != *remote) {
            reconstructPair(local, remote);
        }
        ASSERT_EQ(stateOr(0), local.value_or(CacheState::INV));
        ASSERT_EQ(stateOr(1), remote.value_or(CacheState::INV));
    }

    CacheState
    stateOr(PeId pe) const
    {
        return sys_->cache(pe).stateOf(kAddr);
    }

    System& sys() { return *sys_; }

  private:
    void
    construct(PeId pe, Init init)
    {
        if (!init.has_value())
            return;
        switch (*init) {
          case CacheState::EC:
            sys_->access(pe, MemOp::R, kAddr, Area::Heap, 0);
            break;
          case CacheState::EM:
            sys_->access(pe, MemOp::W, kAddr, Area::Heap, 7);
            break;
          case CacheState::S:
            // Read, then let the scratch PE also read.
            sys_->access(pe, MemOp::R, kAddr, Area::Heap, 0);
            sys_->access(2, MemOp::R, kAddr, Area::Heap, 0);
            break;
          case CacheState::SM:
            // Scratch writes, pe reads the dirty block (ownership moves).
            sys_->access(2, MemOp::W, kAddr, Area::Heap, 9);
            sys_->access(pe, MemOp::R, kAddr, Area::Heap, 0);
            break;
          case CacheState::INV:
            break;
        }
    }

    void
    reconstructPair(Init local, Init remote)
    {
        // Combinations where both PEs hold the block: build them in one
        // sequence instead of independently.
        const CacheState l = local.value_or(CacheState::INV);
        const CacheState r = remote.value_or(CacheState::INV);
        if (l == CacheState::S && r == CacheState::S) {
            sys_->access(1, MemOp::R, kAddr, Area::Heap, 0);
            sys_->access(0, MemOp::R, kAddr, Area::Heap, 0);
            return;
        }
        if (l == CacheState::SM && r == CacheState::S) {
            sys_->access(1, MemOp::W, kAddr, Area::Heap, 5);
            sys_->access(0, MemOp::R, kAddr, Area::Heap, 0);
            return;
        }
        if (l == CacheState::S && r == CacheState::SM) {
            sys_->access(0, MemOp::W, kAddr, Area::Heap, 5);
            sys_->access(1, MemOp::R, kAddr, Area::Heap, 0);
            return;
        }
        FAIL() << "unconstructible state pair";
    }

    std::unique_ptr<System> sys_;
};

class Transitions : public ::testing::TestWithParam<Transition>
{
};

TEST_P(Transitions, FollowsProtocolTable)
{
    const Transition& t = GetParam();
    TransitionDriver driver;
    driver.setup(t.local, t.remote);
    const System::Access result = driver.sys().access(
        0, t.op, TransitionDriver::kAddr, Area::Goal, 1);
    ASSERT_FALSE(result.lockWait);
    EXPECT_EQ(driver.stateOr(0), t.localAfter) << "local state";
    EXPECT_EQ(driver.stateOr(1), t.remoteAfter) << "remote state";
    // Cleanup for lock ops so the directory drains.
    if (t.op == MemOp::LR) {
        driver.sys().access(0, MemOp::U, TransitionDriver::kAddr,
                            Area::Goal, 0);
    }
}

constexpr auto INV = CacheState::INV;
constexpr auto S = CacheState::S;
constexpr auto SM = CacheState::SM;
constexpr auto EC = CacheState::EC;
constexpr auto EM = CacheState::EM;
const Init none = std::nullopt;

INSTANTIATE_TEST_SUITE_P(
    Reads, Transitions,
    ::testing::Values(
        // R: miss with no copy -> EC; supplied clean -> S/S; supplied
        // dirty -> ownership migrates (SM here, S there).
        Transition{none, none, MemOp::R, EC, INV},
        Transition{none, Init{EC}, MemOp::R, S, S},
        Transition{none, Init{EM}, MemOp::R, SM, S},
        Transition{none, Init{S}, MemOp::R, S, S},
        Transition{none, Init{SM}, MemOp::R, SM, S},
        // R hits never change state.
        Transition{Init{EC}, none, MemOp::R, EC, INV},
        Transition{Init{EM}, none, MemOp::R, EM, INV},
        Transition{Init{S}, Init{S}, MemOp::R, S, S},
        Transition{Init{SM}, Init{S}, MemOp::R, SM, S}));

INSTANTIATE_TEST_SUITE_P(
    Writes, Transitions,
    ::testing::Values(
        // W: always ends EM locally, INV remotely.
        Transition{none, none, MemOp::W, EM, INV},
        Transition{none, Init{EM}, MemOp::W, EM, INV},
        Transition{none, Init{EC}, MemOp::W, EM, INV},
        Transition{none, Init{S}, MemOp::W, EM, INV},
        Transition{none, Init{SM}, MemOp::W, EM, INV},
        Transition{Init{EC}, none, MemOp::W, EM, INV},
        Transition{Init{EM}, none, MemOp::W, EM, INV},
        Transition{Init{S}, Init{S}, MemOp::W, EM, INV},
        Transition{Init{SM}, Init{S}, MemOp::W, EM, INV},
        Transition{Init{S}, Init{SM}, MemOp::W, EM, INV}));

INSTANTIATE_TEST_SUITE_P(
    Optimized, Transitions,
    ::testing::Values(
        // DW on a boundary miss allocates exclusively.
        Transition{none, none, MemOp::DW, EM, INV},
        // ER at a non-last word: read-invalidate (case i) on miss.
        Transition{none, Init{EM}, MemOp::ER, EM, INV},
        Transition{none, Init{EC}, MemOp::ER, EC, INV},
        Transition{none, Init{SM}, MemOp::ER, EM, INV},
        // ER hit at a non-last word: plain read.
        Transition{Init{EM}, none, MemOp::ER, EM, INV},
        // RP purges the local copy (read at offset 0 here: hit case).
        Transition{Init{EM}, none, MemOp::RP, INV, INV},
        Transition{Init{EC}, none, MemOp::RP, INV, INV},
        Transition{Init{S}, Init{S}, MemOp::RP, INV, S},
        // RP miss: fetch-invalidate without installing.
        Transition{none, Init{EM}, MemOp::RP, INV, INV},
        Transition{none, none, MemOp::RP, INV, INV},
        // RI: exclusive on miss, plain read on hit.
        Transition{none, Init{EM}, MemOp::RI, EM, INV},
        Transition{none, Init{EC}, MemOp::RI, EC, INV},
        Transition{none, none, MemOp::RI, EC, INV},
        Transition{Init{S}, Init{S}, MemOp::RI, S, S}));

INSTANTIATE_TEST_SUITE_P(
    Locks, Transitions,
    ::testing::Values(
        // LR behaves like an exclusive acquisition.
        Transition{none, none, MemOp::LR, EC, INV},
        Transition{Init{EC}, none, MemOp::LR, EC, INV},
        Transition{Init{EM}, none, MemOp::LR, EM, INV},
        Transition{none, Init{EM}, MemOp::LR, EM, INV},
        Transition{none, Init{EC}, MemOp::LR, EC, INV},
        Transition{Init{S}, Init{S}, MemOp::LR, EC, INV},
        Transition{Init{SM}, Init{S}, MemOp::LR, EM, INV},
        Transition{Init{S}, Init{SM}, MemOp::LR, EM, INV}));

} // namespace
} // namespace pim
