/**
 * @file
 * Conformance-engine tests: the golden RefMachine semantics, the
 * command/replay language, the lock-stepped harness, the exhaustive
 * explorer (clean protocol passes; every seeded mutation is caught),
 * and the trace fuzzer with ddmin shrinking (docs/TESTING.md).
 */

#include <gtest/gtest.h>

#include "common/sim_fault.h"
#include "model/explorer.h"
#include "model/fuzzer.h"

namespace pim {
namespace {

ProtoCmd
cmd(PeId pe, MemOp op, Addr addr, Word value = 0)
{
    return ProtoCmd{pe, op, addr, value};
}

// ---------------------------------------------------------------- commands

TEST(Command, ToStringFormats)
{
    EXPECT_EQ(cmdToString(cmd(0, MemOp::W, 5, 3)), "P0:W@5=3");
    EXPECT_EQ(cmdToString(cmd(1, MemOp::R, 2)), "P1:R@2");
    EXPECT_EQ(cmdToString(cmd(2, MemOp::LR, 7)), "P2:LR@7");
    EXPECT_EQ(cmdToString(cmd(0, MemOp::UW, 1, 9)), "P0:UW@1=9");
}

TEST(Command, TraceRoundTrips)
{
    const std::vector<ProtoCmd> trace = {
        cmd(0, MemOp::LR, 0),       cmd(1, MemOp::R, 1),
        cmd(0, MemOp::UW, 0, 12),   cmd(1, MemOp::DW, 2, 5),
        cmd(2, MemOp::ER, 3),       cmd(0, MemOp::RP, 2),
    };
    EXPECT_EQ(parseTrace(traceToString(trace)), trace);
}

TEST(Command, ParseIgnoresWhitespaceAndEmpties)
{
    const std::vector<ProtoCmd> trace =
        parseTrace("  P0:W@0=1 ; ;\n P1:R@0 ;");
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0], cmd(0, MemOp::W, 0, 1));
    EXPECT_EQ(trace[1], cmd(1, MemOp::R, 0));
}

TEST(Command, ParseRejectsGarbage)
{
    for (const char* bad : {"X0:W@0=1", "P0W@0", "P0:ZZ@0", "P0:W@x=1"}) {
        try {
            parseTrace(bad);
            FAIL() << "accepted: " << bad;
        } catch (const SimFault& fault) {
            EXPECT_EQ(fault.kind(), SimFaultKind::Parse) << bad;
        }
    }
}

// -------------------------------------------------------------- RefMachine

TEST(RefMachine, WriteThenReadIsChecked)
{
    RefMachine ref(2, 2, 8, 2);
    ref.apply(cmd(0, MemOp::W, 3, 42), {});
    const RefOutcome out = ref.apply(cmd(1, MemOp::R, 3), {});
    EXPECT_FALSE(out.lockWait);
    EXPECT_TRUE(out.checked);
    EXPECT_EQ(out.value, 42u);
}

TEST(RefMachine, LockWaitLeavesStateUnchanged)
{
    RefMachine ref(2, 2, 8, 2);
    ref.apply(cmd(0, MemOp::W, 0, 7), {});
    ref.apply(cmd(0, MemOp::LR, 1), {}); // locks word 1, block [0,2)
    EXPECT_TRUE(ref.wouldLockWait(1, 0)); // same block, other PE
    const RefOutcome out = ref.apply(cmd(1, MemOp::R, 0), {});
    EXPECT_TRUE(out.lockWait);
    EXPECT_FALSE(out.checked);
    EXPECT_EQ(ref.valueOf(0), 7u); // untouched
    EXPECT_FALSE(ref.wouldLockWait(0, 0)); // own lock never waits
}

TEST(RefMachine, UnlockWriteReleasesAndDefines)
{
    RefMachine ref(2, 2, 8, 2);
    ref.apply(cmd(0, MemOp::LR, 0), {});
    EXPECT_TRUE(ref.holdsLock(0, 0));
    EXPECT_EQ(ref.heldCount(0), 1u);
    ref.apply(cmd(0, MemOp::UW, 0, 5), {});
    EXPECT_FALSE(ref.holdsLock(0, 0));
    EXPECT_EQ(ref.heldCount(0), 0u);
    EXPECT_EQ(ref.valueOf(0), 5u);
    EXPECT_FALSE(ref.wouldLockWait(1, 0));
}

TEST(RefMachine, FreshDwZeroesBlock)
{
    RefMachine ref(2, 2, 8, 2);
    ref.apply(cmd(0, MemOp::W, 1, 99), {});
    RefPreFacts pre;
    pre.freshAlloc = true;
    ref.apply(cmd(0, MemOp::DW, 0, 4), pre);
    EXPECT_EQ(ref.valueOf(0), 4u);
    EXPECT_EQ(ref.valueOf(1), 0u) << "fresh alloc must zero the block";
}

TEST(RefMachine, DirtyPurgeUndefinesBlock)
{
    RefMachine ref(2, 2, 8, 2);
    ref.apply(cmd(0, MemOp::W, 0, 3), {});
    EXPECT_TRUE(ref.isDefined(0));
    RefPreFacts pre;
    pre.purgesDirty = true;
    const RefOutcome out = ref.apply(cmd(0, MemOp::RP, 0), pre);
    EXPECT_TRUE(out.checked);
    EXPECT_EQ(out.value, 3u); // the purging read still sees the value
    EXPECT_FALSE(ref.isDefined(0));
    EXPECT_FALSE(ref.isDefined(1));
}

// ----------------------------------------------------------------- harness

HarnessConfig
tinyConfig(ProtocolMutation mutation = ProtocolMutation::None)
{
    HarnessConfig config;
    config.numPes = 2;
    config.blocks = 1;
    config.blockWords = 2;
    config.mutation = mutation;
    return config;
}

TEST(Harness, CleanHandoffSequencePasses)
{
    ConformanceHarness harness(tinyConfig());
    // Producer locks, consumer parks, UW hands the value over, the
    // woken consumer retries — the paper's Section 3.1 choreography.
    harness.step(cmd(0, MemOp::LR, 0));
    const std::vector<ProtoCmd> park = {cmd(1, MemOp::R, 0)};
    harness.step(park[0]); // parks
    EXPECT_TRUE(harness.anyParked());
    harness.step(cmd(0, MemOp::UW, 0, 11));
    // After the UL wakeup the only enabled P1 command is its retry.
    bool retried = false;
    for (const ProtoCmd& next : harness.enabledCommands()) {
        if (next.pe == 1) {
            EXPECT_EQ(next, park[0]);
            harness.step(next);
            retried = true;
            break;
        }
    }
    EXPECT_TRUE(retried);
    EXPECT_FALSE(harness.anyParked());
    EXPECT_GE(harness.checksRun(), 4u);
}

TEST(Harness, SnapshotIsScheduleCanonical)
{
    // Two different paths to the same protocol situation must merge.
    ConformanceHarness a(tinyConfig());
    a.step(cmd(0, MemOp::W, 0, 1));
    a.step(cmd(1, MemOp::R, 1));

    ConformanceHarness b(tinyConfig());
    b.step(cmd(1, MemOp::R, 1));
    b.step(cmd(0, MemOp::W, 0, 1));

    // Same final states (P0 wrote after P1's read invalidated nothing
    // both orders end EM@P0-after-inv vs ... — only assert determinism
    // of the snapshot for identical replays here).
    ConformanceHarness c(tinyConfig());
    c.step(cmd(0, MemOp::W, 0, 1));
    c.step(cmd(1, MemOp::R, 1));
    EXPECT_EQ(a.snapshot(), c.snapshot());
    EXPECT_EQ(a.snapshotHash(), c.snapshotHash());
    EXPECT_NE(a.snapshot(), b.snapshot()); // LRU/ownership order differs
}

TEST(Harness, EnabledRespectsLockOwnership)
{
    ConformanceHarness harness(tinyConfig());
    EXPECT_FALSE(harness.enabled(cmd(0, MemOp::U, 0))) << "no lock held";
    harness.step(cmd(0, MemOp::LR, 0));
    EXPECT_TRUE(harness.enabled(cmd(0, MemOp::U, 0)));
    EXPECT_FALSE(harness.enabled(cmd(1, MemOp::U, 0)));
    EXPECT_FALSE(harness.enabled(cmd(0, MemOp::LR, 0))) << "already held";
}

// ---------------------------------------------------------------- explorer

TEST(Explorer, CleanProtocolHasNoDivergence)
{
    ExploreConfig config;
    config.harness = tinyConfig();
    config.depth = 5;
    const ExploreResult result = explore(config);
    EXPECT_FALSE(result.divergence) << result.divergenceMessage;
    EXPECT_FALSE(result.truncated);
    EXPECT_GT(result.states, 100u);
    EXPECT_GT(result.edges, result.states);
}

TEST(Explorer, ThreePeTwoBlockCleanSlice)
{
    ExploreConfig config;
    config.harness = tinyConfig();
    config.harness.numPes = 3;
    config.harness.blocks = 2;
    config.harness.sets = 2;
    config.depth = 4;
    const ExploreResult result = explore(config);
    EXPECT_FALSE(result.divergence) << result.divergenceMessage;
}

class ExplorerMutation
    : public ::testing::TestWithParam<ProtocolMutation>
{
};

TEST_P(ExplorerMutation, IsCaughtWithShortTrace)
{
    ExploreConfig config;
    config.harness = tinyConfig(GetParam());
    config.depth = 8;
    const ExploreResult result = explore(config);
    ASSERT_TRUE(result.divergence)
        << "mutation " << protocolMutationName(GetParam())
        << " was not detected";
    EXPECT_LE(result.divergenceTrace.size(), 12u);
    EXPECT_FALSE(result.divergenceMessage.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllMutations, ExplorerMutation,
    ::testing::Values(ProtocolMutation::SmSharedAsClean,
                      ProtocolMutation::WriteSharedSkipsInv,
                      ProtocolMutation::ErKeepsSupplier,
                      ProtocolMutation::UnlockDropsUl),
    [](const ::testing::TestParamInfo<ProtocolMutation>& info) {
        return protocolMutationName(info.param);
    });

// ------------------------------------------------------------------ fuzzer

TEST(Fuzzer, CleanProtocolSurvivesCampaign)
{
    FuzzConfig config;
    config.harness = tinyConfig();
    config.harness.numPes = 3;
    config.harness.blocks = 2;
    config.harness.sets = 2;
    config.seed = 11;
    config.traces = 8;
    config.len = 120;
    const FuzzResult result = fuzz(config);
    EXPECT_FALSE(result.divergence) << result.divergenceMessage;
    EXPECT_EQ(result.tracesRun, 8u);
    EXPECT_GT(result.commandsRun, 0u);
}

TEST(Fuzzer, IsDeterministicPerSeed)
{
    FuzzConfig config;
    config.harness = tinyConfig(ProtocolMutation::UnlockDropsUl);
    config.seed = 3;
    config.traces = 20;
    config.len = 200;
    const FuzzResult a = fuzz(config);
    const FuzzResult b = fuzz(config);
    ASSERT_TRUE(a.divergence);
    EXPECT_EQ(a.failingSeed, b.failingSeed);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.shrunk, b.shrunk);
}

class FuzzerMutation : public ::testing::TestWithParam<ProtocolMutation>
{
};

TEST_P(FuzzerMutation, ShrinksToTinyReproducer)
{
    FuzzConfig config;
    config.harness = tinyConfig(GetParam());
    config.seed = 5;
    config.traces = 40;
    config.len = 250;
    const FuzzResult result = fuzz(config);
    ASSERT_TRUE(result.divergence)
        << "mutation " << protocolMutationName(GetParam())
        << " escaped the fuzzer";
    ASSERT_FALSE(result.shrunk.empty());
    EXPECT_LE(result.shrunk.size(), 12u);
    EXPECT_LE(result.shrunk.size(), result.trace.size());
    EXPECT_FALSE(result.shrunkMessage.empty());

    // The shrunk script must replay to the same class of divergence.
    ConformanceHarness replayer(config.harness);
    bool reproduced = false;
    try {
        replayer.replayLenient(result.shrunk);
        reproduced = replayer.enabledCommands().empty() &&
                     replayer.anyParked();
    } catch (const SimFault&) {
        reproduced = true;
    }
    EXPECT_TRUE(reproduced);

    // Local minimality: dropping any single command loses the bug.
    for (std::size_t skip = 0; skip < result.shrunk.size(); ++skip) {
        std::vector<ProtoCmd> smaller;
        for (std::size_t i = 0; i < result.shrunk.size(); ++i) {
            if (i != skip)
                smaller.push_back(result.shrunk[i]);
        }
        ConformanceHarness lens(config.harness);
        bool still = false;
        try {
            lens.replayLenient(smaller);
            still = lens.enabledCommands().empty() && lens.anyParked();
        } catch (const SimFault&) {
            still = true;
        }
        EXPECT_FALSE(still) << "command " << skip << " is removable";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMutations, FuzzerMutation,
    ::testing::Values(ProtocolMutation::SmSharedAsClean,
                      ProtocolMutation::WriteSharedSkipsInv,
                      ProtocolMutation::ErKeepsSupplier,
                      ProtocolMutation::UnlockDropsUl),
    [](const ::testing::TestParamInfo<ProtocolMutation>& info) {
        return protocolMutationName(info.param);
    });

TEST(Fuzzer, ShrinkTraceKeepsDivergence)
{
    // Hand the shrinker a long trace with one embedded bug trigger and
    // plenty of chaff; it must strip the chaff.
    const HarnessConfig config = tinyConfig(ProtocolMutation::ErKeepsSupplier);
    std::vector<ProtoCmd> trace;
    for (int i = 0; i < 10; ++i)
        trace.push_back(cmd(0, MemOp::W, 1, static_cast<Word>(i + 1)));
    trace.push_back(cmd(0, MemOp::R, 0));
    trace.push_back(cmd(1, MemOp::ER, 0));
    std::string message;
    const std::vector<ProtoCmd> shrunk =
        shrinkTrace(config, trace, &message);
    EXPECT_LE(shrunk.size(), 2u);
    EXPECT_FALSE(message.empty());
}

} // namespace
} // namespace pim
