/**
 * @file
 * ThreadPool unit tests (ctest label `sweep`): results independent of
 * worker count and scheduling, exception propagation through wait(),
 * and shutdown with work still queued.
 */

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_fault.h"
#include "common/thread_pool.h"

using namespace pim;

namespace {

TEST(ThreadPoolTest, RunsEveryTaskOnce)
{
    ThreadPool pool(4);
    constexpr int kTasks = 200;
    std::vector<std::atomic<int>> runs(kTasks);
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&runs, i] { runs[i].fetch_add(1); });
    pool.wait();
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(runs[i].load(), 1) << "task " << i;
    EXPECT_EQ(pool.tasksSubmitted(), kTasks);
}

/**
 * The determinism contract the sweep engine builds on: tasks writing
 * into pre-assigned slots produce identical results for any worker
 * count, even though execution order differs.
 */
TEST(ThreadPoolTest, SlotResultsAreOrderingIndependent)
{
    constexpr int kTasks = 128;
    std::vector<std::vector<std::uint64_t>> outcomes;
    for (unsigned workers : {1u, 3u, 8u}) {
        std::vector<std::uint64_t> slots(kTasks, 0);
        ThreadPool pool(workers);
        for (int i = 0; i < kTasks; ++i) {
            pool.submit([&slots, i] {
                // A little computation whose result depends only on the
                // slot index.
                std::uint64_t h = i;
                for (int k = 0; k < 1000; ++k)
                    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
                slots[i] = h;
            });
        }
        pool.wait();
        outcomes.push_back(std::move(slots));
    }
    EXPECT_EQ(outcomes[0], outcomes[1]);
    EXPECT_EQ(outcomes[0], outcomes[2]);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&completed, i] {
            if (i == 3) {
                throw PIM_SIM_FAULT(SimFaultKind::Protocol,
                                    "injected test fault");
            }
            completed.fetch_add(1);
        });
    }
    EXPECT_THROW(pool.wait(), SimFault);
    // The failing task did not tear the pool down: all others ran.
    EXPECT_EQ(completed.load(), 9);
    // The exception is delivered once; a second wait is clean.
    pool.wait();
}

TEST(ThreadPoolTest, WaitCanBeCalledWithNoWork)
{
    ThreadPool pool(2);
    pool.wait();
    pool.submit([] {});
    pool.wait();
    pool.wait();
}

/** Destruction with queued work drains the queue instead of dropping it. */
TEST(ThreadPoolTest, ShutdownDrainsQueuedWork)
{
    std::atomic<int> runs{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&runs] {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                runs.fetch_add(1);
            });
        }
        // No wait(): the destructor must finish the backlog.
    }
    EXPECT_EQ(runs.load(), 50);
}

TEST(ThreadPoolTest, ZeroMeansHardwareWorkers)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), ThreadPool::defaultWorkers());
    EXPECT_GE(pool.workerCount(), 1u);
}

/** Tasks submitted from inside a task (nested fan-out) complete too. */
TEST(ThreadPoolTest, TasksCanSubmitTasks)
{
    ThreadPool pool(3);
    std::atomic<int> runs{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &runs] {
            pool.submit([&runs] { runs.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(runs.load(), 8);
}

} // namespace
