/**
 * @file
 * Coherence auditor + lock watchdog tests: deliberately broken protocol
 * runs must be detected with a classified SimFault, and clean runs must
 * pass silently. Also covers SystemConfig construction-time validation.
 */

#include <gtest/gtest.h>

#include "common/sim_fault.h"
#include "fault/fault_injector.h"
#include "sim/system.h"
#include "verify/coherence_auditor.h"
#include "verify/lock_watchdog.h"

namespace pim {
namespace {

SystemConfig
smallConfig(std::uint32_t pes = 3)
{
    SystemConfig config;
    config.numPes = pes;
    config.cache.geometry = {4, 2, 8};
    config.memoryWords = 1 << 16;
    return config;
}

// ------------------------------------------- SystemConfig validation --

TEST(SystemValidate, AcceptsTheDefaultConfig)
{
    EXPECT_NO_THROW(SystemConfig{}.validate());
    EXPECT_NO_THROW(smallConfig().validate());
}

TEST(SystemValidate, RejectsBadConfigsWithDescriptiveFaults)
{
    struct Case {
        const char* what;
        SystemConfig config;
    };
    std::vector<Case> cases;
    cases.push_back({"numPes", smallConfig(0)});
    Case block{"blockWords", smallConfig()};
    block.config.cache.geometry.blockWords = 3;
    cases.push_back(block);
    Case big_block{"blockWords", smallConfig()};
    big_block.config.cache.geometry.blockWords = 128;
    cases.push_back(big_block);
    Case sets{"sets", smallConfig()};
    sets.config.cache.geometry.sets = 5;
    cases.push_back(sets);
    Case ways{"ways", smallConfig()};
    ways.config.cache.geometry.ways = 0;
    cases.push_back(ways);
    Case locks{"lockEntries", smallConfig()};
    locks.config.cache.lockEntries = 0;
    cases.push_back(locks);
    Case mem{"memoryWords", smallConfig()};
    mem.config.memoryWords = 0;
    cases.push_back(mem);
    Case unaligned{"memoryWords", smallConfig()};
    unaligned.config.memoryWords = 1022; // Not a multiple of 4.
    cases.push_back(unaligned);

    for (const Case& c : cases) {
        try {
            c.config.validate();
            FAIL() << c.what << " case was accepted";
        } catch (const SimFault& fault) {
            EXPECT_EQ(fault.kind(), SimFaultKind::Config);
            EXPECT_NE(std::string(fault.what()).find(c.what),
                      std::string::npos)
                << fault.what();
        }
    }
}

TEST(SystemValidate, ConstructionRunsValidation)
{
    SystemConfig config = smallConfig();
    config.cache.geometry.sets = 6;
    EXPECT_THROW(System{config}, SimFault);
}

TEST(SystemValidate, LayoutCoverageOverload)
{
    SystemConfig config = smallConfig();
    EXPECT_NO_THROW(config.validate(config.memoryWords));
    EXPECT_THROW(config.validate(config.memoryWords + 1), SimFault);
}

// ------------------------------------------------------- the auditor --

class Audited : public ::testing::Test
{
  protected:
    Audited() : sys_(smallConfig()), auditor_(sys_), watchdog_(sys_, {})
    {
        sys_.addAccessObserver(&auditor_);
        sys_.addAccessObserver(&watchdog_);
    }

    ~Audited() override { sys_.abandonParkedWaiters(); }

    System::Access
    op(PeId pe, MemOp memop, Addr addr, Word wdata = 0)
    {
        return sys_.access(pe, memop, addr, Area::Heap, wdata);
    }

    System sys_;
    CoherenceAuditor auditor_;
    LockWatchdog watchdog_;
};

TEST_F(Audited, CleanSharingPasses)
{
    op(0, MemOp::W, 100, 7);
    op(1, MemOp::R, 100);
    op(2, MemOp::W, 100, 9);
    op(0, MemOp::R, 100);
    EXPECT_EQ(op(1, MemOp::R, 100).data, 9u);
    op(0, MemOp::DW, 256, 3);
    EXPECT_EQ(op(1, MemOp::RP, 256).data, 3u);
    EXPECT_NO_THROW(auditor_.auditFull());
    EXPECT_GT(auditor_.checksRun(), 0u);
}

TEST_F(Audited, CorruptedTransferIsCaughtAtTheFaultingAccess)
{
    // Transfer #1 (pe0's fill) is clean; transfer #2 is the cache-to-
    // cache supply to pe1 and gets one bit flipped: pe1's copy then
    // disagrees with pe0's retained SM copy, whatever bit was hit.
    FaultInjector injector(FaultPlan::parse("corrupt_word:after=1"), 1);
    sys_.setFaultInjector(&injector);
    op(0, MemOp::W, 100, 7);
    try {
        op(1, MemOp::R, 100);
        FAIL() << "corruption not detected";
    } catch (const SimFault& fault) {
        EXPECT_TRUE(fault.kind() == SimFaultKind::Protocol ||
                    fault.kind() == SimFaultKind::Corruption)
            << fault.what();
    }
}

TEST_F(Audited, LostDirtyBitIsCaught)
{
    // The duplicated snoop reply reuses the Illinois-variant downgrade
    // path twice: the second reply sees an already-downgraded (clean)
    // copy, so the bus believes the block was clean and nobody owns the
    // dirty data any more — both copies now silently disagree with
    // shared memory.
    FaultInjector injector(FaultPlan::parse("dup_snoop:p=1"), 1);
    sys_.setFaultInjector(&injector);
    op(0, MemOp::W, 100, 7);
    try {
        op(1, MemOp::R, 100);
        FAIL() << "lost dirty bit not detected";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Protocol) << fault.what();
    }
}

TEST_F(Audited, BitFlipOnFillIsCaughtOnRead)
{
    // Fill corruption of pe1's copy: the flipped bit lands in one of the
    // four words of the block; pe0 still holds the true copy, so the
    // per-access copy-agreement check fires whatever word was hit.
    FaultInjector injector(FaultPlan::parse("bit_flip:after=1"), 1);
    sys_.setFaultInjector(&injector);
    op(0, MemOp::W, 100, 7); // Fill #1: pe0, clean.
    try {
        op(1, MemOp::R, 100); // Fill #2: pe1, corrupted.
        FAIL() << "fill corruption not detected";
    } catch (const SimFault& fault) {
        EXPECT_TRUE(fault.kind() == SimFaultKind::Protocol ||
                    fault.kind() == SimFaultKind::Corruption)
            << fault.what();
    }
}

// ------------------------------------------------------ the watchdog --

TEST_F(Audited, CircularWaitDeadlockIsDetected)
{
    op(0, MemOp::LR, 100);
    op(1, MemOp::LR, 200);
    EXPECT_TRUE(op(2, MemOp::LR, 100).lockWait);
    EXPECT_TRUE(op(0, MemOp::LR, 200).lockWait);
    try {
        op(1, MemOp::LR, 100); // Parks the last runnable PE.
        FAIL() << "deadlock not detected";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Deadlock);
        // The message carries the full lock picture.
        EXPECT_NE(std::string(fault.what()).find("LWAIT"),
                  std::string::npos)
            << fault.what();
    }
}

TEST_F(Audited, ReportStallRaisesDeadlock)
{
    try {
        watchdog_.reportStall();
        FAIL() << "reportStall returned";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Deadlock);
    }
}

TEST(Watchdog, LostUnlockShowsUpAsStarvation)
{
    SystemConfig config = smallConfig(2);
    System sys(config);
    WatchdogConfig bounds;
    bounds.starvationBound = 10;
    LockWatchdog watchdog(sys, bounds);
    sys.addAccessObserver(&watchdog);
    FaultInjector injector(FaultPlan::parse("lost_ul:p=1"), 1);
    sys.setFaultInjector(&injector);

    sys.access(0, MemOp::LR, 100, Area::Heap);
    EXPECT_TRUE(sys.access(1, MemOp::LR, 100, Area::Heap).lockWait);
    sys.access(0, MemOp::U, 100, Area::Heap); // UL lost: pe1 sleeps on.
    try {
        for (int i = 0; i < 100; ++i)
            sys.access(0, MemOp::R, 500 + i, Area::Heap);
        FAIL() << "starvation not detected";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Starvation);
    }
    sys.abandonParkedWaiters();
}

TEST(Watchdog, StuckLwaitPlusSpuriousWakeupIsLivelock)
{
    SystemConfig config = smallConfig(2);
    System sys(config);
    WatchdogConfig bounds;
    bounds.livelockRetries = 5;
    LockWatchdog watchdog(sys, bounds);
    sys.addAccessObserver(&watchdog);
    FaultInjector injector(
        FaultPlan::parse("stuck_lwait:p=1,spurious_wakeup:p=1"), 1);
    sys.setFaultInjector(&injector);

    sys.access(0, MemOp::LR, 100, Area::Heap);
    EXPECT_TRUE(sys.access(1, MemOp::LR, 100, Area::Heap).lockWait);
    // Release leaves a ghost LWAIT answering LH forever; the spurious
    // wakeup un-parks pe1 after every access, so it retries, is
    // rejected by the ghost, and re-parks — livelock.
    sys.access(0, MemOp::U, 100, Area::Heap);
    try {
        for (int i = 0; i < 100; ++i) {
            ASSERT_FALSE(sys.parked(1)) << "spurious wakeup missing";
            sys.access(1, MemOp::LR, 100, Area::Heap);
        }
        FAIL() << "livelock not detected";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Livelock) << fault.what();
        EXPECT_NE(std::string(fault.what()).find("ghost"),
                  std::string::npos)
            << fault.what();
    }
    sys.abandonParkedWaiters();
}

} // namespace
} // namespace pim
