// Cooperative cancellation/deadline facility (docs/ROBUSTNESS.md):
// CancelToken, wall-clock Deadline, the strided RunGuard polled from
// System::access, the transient-fault taxonomy and the family exit
// codes the bench binaries report.

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/sim_fault.h"

namespace pim {
namespace {

TEST(CancelToken, StartsClearAndLatches)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    token.cancel(); // idempotent
    EXPECT_TRUE(token.cancelled());
}

TEST(Deadline, DefaultIsUnlimited)
{
    const Deadline deadline;
    EXPECT_TRUE(deadline.unlimited());
    EXPECT_FALSE(deadline.expired());
    EXPECT_EQ(deadline.limitSeconds(), 0.0);
}

TEST(Deadline, NeverNeverExpires)
{
    const Deadline deadline = Deadline::never();
    EXPECT_TRUE(deadline.unlimited());
    EXPECT_FALSE(deadline.expired());
}

TEST(Deadline, GenerousBudgetIsNotExpiredImmediately)
{
    const Deadline deadline = Deadline::afterSeconds(3600);
    EXPECT_FALSE(deadline.unlimited());
    EXPECT_FALSE(deadline.expired());
    EXPECT_DOUBLE_EQ(deadline.limitSeconds(), 3600.0);
    EXPECT_GE(deadline.elapsedSeconds(), 0.0);
    EXPECT_LT(deadline.elapsedSeconds(), 3600.0);
}

TEST(Deadline, TinyBudgetExpires)
{
    const Deadline deadline = Deadline::afterSeconds(1e-9);
    // steady_clock has advanced by the time we ask.
    while (!deadline.expired()) {
    }
    EXPECT_TRUE(deadline.expired());
}

TEST(RunGuard, UnlimitedGuardPollsForFree)
{
    RunGuard guard(Deadline::never());
    for (int i = 0; i < 100000; ++i)
        guard.poll();
    EXPECT_EQ(guard.polls(), 100000u);
    EXPECT_FALSE(guard.tripped());
}

TEST(RunGuard, ExpiredDeadlineThrowsTimeoutAtStrideBoundary)
{
    RunGuard guard(Deadline::afterSeconds(1e-9), nullptr, /*stride=*/64);
    while (!Deadline::afterSeconds(0).expired()) {
    }
    // The clock check only happens every `stride` polls: the first 63
    // polls are a counter increment and a mask, nothing else.
    for (int i = 0; i < 63; ++i)
        EXPECT_NO_THROW(guard.poll());
    try {
        guard.poll();
        FAIL() << "expected SimFault(Timeout)";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Timeout);
    }
    EXPECT_TRUE(guard.tripped());
}

TEST(RunGuard, CancelledTokenThrowsCancelled)
{
    CancelToken token;
    RunGuard guard(Deadline::never(), &token, /*stride=*/1);
    EXPECT_NO_THROW(guard.poll());
    token.cancel();
    try {
        guard.poll();
        FAIL() << "expected SimFault(Cancelled)";
    } catch (const SimFault& fault) {
        EXPECT_EQ(fault.kind(), SimFaultKind::Cancelled);
    }
}

TEST(RunGuard, StrideRoundsUpToPowerOfTwo)
{
    CancelToken token;
    token.cancel();
    // stride=100 rounds up to 128: the guard must not trip before the
    // 128th poll and must trip exactly there.
    RunGuard guard(Deadline::never(), &token, /*stride=*/100);
    for (int i = 0; i < 127; ++i)
        EXPECT_NO_THROW(guard.poll());
    EXPECT_THROW(guard.poll(), SimFault);
}

TEST(SimFaultKinds, TimeoutIsTheOnlyTransientKind)
{
    for (int i = 0; i < kNumSimFaultKinds; ++i) {
        const auto kind = static_cast<SimFaultKind>(i);
        EXPECT_EQ(simFaultKindTransient(kind),
                  kind == SimFaultKind::Timeout)
            << simFaultKindName(kind);
    }
}

TEST(SimFaultKinds, NewKindsHaveNames)
{
    EXPECT_STREQ(simFaultKindName(SimFaultKind::Timeout), "timeout");
    EXPECT_STREQ(simFaultKindName(SimFaultKind::Cancelled), "cancelled");
}

TEST(SimFaultKinds, ExitCodesGroupByFamily)
{
    EXPECT_EQ(simFaultExitCode(SimFaultKind::Config), 10);
    EXPECT_EQ(simFaultExitCode(SimFaultKind::Parse), 11);
    EXPECT_EQ(simFaultExitCode(SimFaultKind::Corruption), 12);
    EXPECT_EQ(simFaultExitCode(SimFaultKind::Protocol), 12);
    EXPECT_EQ(simFaultExitCode(SimFaultKind::Deadlock), 13);
    EXPECT_EQ(simFaultExitCode(SimFaultKind::Livelock), 13);
    EXPECT_EQ(simFaultExitCode(SimFaultKind::Starvation), 13);
    EXPECT_EQ(simFaultExitCode(SimFaultKind::Timeout), 14);
    EXPECT_EQ(simFaultExitCode(SimFaultKind::Cancelled), 14);
}

} // namespace
} // namespace pim
