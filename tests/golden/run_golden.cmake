# Byte-for-byte golden comparison of a bench binary's ASCII output
# (ctest `golden` label, docs/TESTING.md).
#
# Usage:
#   cmake -DBINARY=<path> -DARGS="--scale;1;--pes;2" -DGOLDEN=<path>
#         -DOUT=<scratch file> -P run_golden.cmake
#
# Runs BINARY with ARGS, captures stdout to OUT, and fails unless OUT is
# byte-identical to GOLDEN. On mismatch the unified diff is printed (via
# `cmake -E compare_files` first, then `diff` when available) and the
# regenerate command is shown.

foreach(var BINARY GOLDEN OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "run_golden.cmake: ${var} is required")
    endif()
endforeach()

execute_process(COMMAND ${BINARY} ${ARGS}
                OUTPUT_FILE ${OUT}
                RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "golden: ${BINARY} exited with ${run_rc}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
                RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
    find_program(DIFF_TOOL diff)
    if(DIFF_TOOL)
        execute_process(COMMAND ${DIFF_TOOL} -u ${GOLDEN} ${OUT}
                        OUTPUT_VARIABLE diff_text)
        message(STATUS "diff (golden vs actual):\n${diff_text}")
    endif()
    message(FATAL_ERROR
            "golden: output of ${BINARY} differs from ${GOLDEN}.\n"
            "If the change is intended, regenerate with:\n"
            "  ${BINARY} ${ARGS} > ${GOLDEN}")
endif()
