/**
 * @file
 * Tests for KL1 vectors (the system builtins new_vector/3,
 * vector_element/3, set_vector_element/4 and the MRB-style destructive
 * set_vector_element_d/4), including unification over vectors, GC
 * relocation, and the heap-traffic difference between pure-copy and
 * in-place updates.
 */

#include <gtest/gtest.h>

#include "kl1_test_util.h"

namespace pim::kl1 {
namespace {

using testutil::Outcome;
using testutil::run;
using testutil::smallConfig;

TEST(Kl1Vector, NewAndRead)
{
    const std::string src =
        "main(R) :- true | new_vector(5, 7, V), vector_element(V, 3, R).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "7");
}

TEST(Kl1Vector, FormatsWithBraces)
{
    const std::string src =
        "main(R) :- true | new_vector(3, 0, V),\n"
        "    set_vector_element(V, 1, x, R).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "{0,x,0}");
}

TEST(Kl1Vector, PureUpdatePreservesOriginal)
{
    const std::string src =
        "main(R) :- true | new_vector(4, 0, V),\n"
        "    set_vector_element(V, 2, 9, V1),\n"
        "    vector_element(V, 2, A), vector_element(V1, 2, B),\n"
        "    R = pair(A, B).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "pair(0,9)");
}

TEST(Kl1Vector, DestructiveUpdateAliases)
{
    const std::string src =
        "main(R) :- true | new_vector(4, 0, V),\n"
        "    set_vector_element_d(V, 2, 9, V1),\n"
        "    vector_element(V, 2, A), vector_element(V1, 2, B),\n"
        "    R = pair(A, B).\n";
    // The destructive builtin updates in place: old handle sees 9 too.
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "pair(9,9)");
}

TEST(Kl1Vector, VectorsUnifyStructurally)
{
    const std::string src =
        "same(A, B, R) :- A == B | R = yes.\n"
        "same(A, B, R) :- A \\= B | R = no.\n"
        "main(R) :- true | new_vector(3, 1, V), new_vector(3, 1, W),\n"
        "    same(V, W, R).\n"
        "main2(R) :- true | new_vector(3, 1, V),\n"
        "    set_vector_element(V, 0, 2, W), same(V, W, R).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "yes");
    EXPECT_EQ(run(src, "main2(R).").bindings.at("R"), "no");
}

TEST(Kl1Vector, ElementsCanBeUnboundAndBoundLater)
{
    const std::string src =
        "main(R) :- true | new_vector(2, X, V), X = 5,\n"
        "    vector_element(V, 1, R).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "5");
}

TEST(Kl1Vector, FillAndSumLoop)
{
    const std::string src =
        "fill(V, N, N, Out) :- true | Out = V.\n"
        "fill(V, I, N, Out) :- I < N | X := I * I,\n"
        "    set_vector_element(V, I, X, V1), I1 := I + 1,\n"
        "    fill(V1, I1, N, Out).\n"
        "vsum(_, N, N, Acc, R) :- true | R = Acc.\n"
        "vsum(V, I, N, Acc, R) :- wait(V), I < N |\n"
        "    vector_element(V, I, X),\n"
        "    acc(X, V, I, N, Acc, R).\n"
        "acc(X, V, I, N, Acc, R) :- integer(X) | A1 := Acc + X,\n"
        "    I1 := I + 1, vsum(V, I1, N, A1, R).\n"
        "main(R) :- true | new_vector(20, 0, V), fill(V, 0, 20, V1),\n"
        "    vsum(V1, 0, 20, 0, R).\n";
    // Sum of squares 0..19 = 2470.
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "2470");
}

TEST(Kl1Vector, CopyUpdateCostsMoreHeapTrafficThanDestructive)
{
    const std::string setup =
        "upd(V, 0, Out) :- true | Out = V.\n"
        "upd(V, N, Out) :- N > 0 | I := N mod 32,\n"
        "    set_vector_element(V, I, N, V1), N1 := N - 1,\n"
        "    upd(V1, N1, Out).\n"
        "updd(V, 0, Out) :- true | Out = V.\n"
        "updd(V, N, Out) :- N > 0 | I := N mod 32,\n"
        "    set_vector_element_d(V, I, N, V1), N1 := N - 1,\n"
        "    updd(V1, N1, Out).\n"
        "readv(W, I, R) :- wait(W) | vector_element(W, I, R).\n"
        "mainp(R) :- true | new_vector(32, 0, V), upd(V, 200, W),\n"
        "    readv(W, 1, R).\n"
        "maind(R) :- true | new_vector(32, 0, V), updd(V, 200, W),\n"
        "    readv(W, 1, R).\n";
    const Outcome pure = run(setup, "mainp(R).", smallConfig(1));
    const Outcome destr = run(setup, "maind(R).", smallConfig(1));
    EXPECT_EQ(pure.bindings.at("R"), destr.bindings.at("R"));
    // Copying 200 x 33 words dwarfs 200 single-word writes.
    EXPECT_GT(pure.refs.count(Area::Heap, MemOp::DW),
              destr.refs.count(Area::Heap, MemOp::DW) + 5000);
}

TEST(Kl1Vector, SurvivesGc)
{
    const std::string src =
        "churn(0, R) :- true | R = done.\n"
        "churn(N, R) :- N > 0 | new_vector(64, N, _),\n"
        "    N1 := N - 1, churn(N1, R).\n"
        "main(R) :- true | new_vector(8, 3, Keep),\n"
        "    set_vector_element(Keep, 4, 11, K1), churn(400, X),\n"
        "    fin(X, K1, R).\n"
        "fin(done, K1, R) :- true | vector_element(K1, 4, A),\n"
        "    vector_element(K1, 0, B), wrap(A, B, R).\n"
        "wrap(A, B, R) :- integer(A), integer(B) | R = pair(A, B).\n";
    Kl1Config config = smallConfig(1);
    config.enableGc = true;
    config.layout.heapWordsPerPe = 1 << 14;
    config.gcSlackWords = 1024;
    Module module = compileProgram(parseProgram(src));
    Emulator emu(std::move(module), config);
    const RunStats stats = emu.run("main(R).");
    EXPECT_GT(stats.gc.collections, 0u);
    for (const auto& [name, value] : emu.queryBindings())
        EXPECT_EQ(value, "pair(11,3)") << name;
}

TEST(Kl1VectorDeath, IndexOutOfRange)
{
    EXPECT_EXIT(run("main(R) :- true | new_vector(3, 0, V),\n"
                    "    vector_element(V, 3, R).\n",
                    "main(R)."),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(Kl1VectorDeath, UnboundVectorArgument)
{
    EXPECT_EXIT(run("main(R) :- true | vector_element(V, 0, R), mk(V).\n"
                    "mk(V) :- true | new_vector(2, 0, V).\n",
                    "main(R)."),
                ::testing::ExitedWithCode(1), "synchronize with a guard");
}

} // namespace
} // namespace pim::kl1
