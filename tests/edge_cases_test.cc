/**
 * @file
 * Edge cases and failure paths across modules: resource exhaustion,
 * compiler limits, deep structures, degenerate configurations.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kl1_test_util.h"

namespace pim::kl1 {
namespace {

using testutil::run;
using testutil::smallConfig;

TEST(EdgeCases, LayoutClassificationConsistentOnRandomAddresses)
{
    LayoutConfig config;
    config.numPes = 5; // deliberately not a power of two
    const Layout layout(config);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.below(layout.totalWords() + 10000);
        const Area area = layout.areaOf(addr);
        const PeId pe = layout.peOf(addr);
        if (area == Area::Instruction || area == Area::Unknown) {
            EXPECT_EQ(pe, kNoPe);
        } else {
            ASSERT_LT(pe, 5u);
            // The address really is inside that PE's segment.
            const Range seg = layout.segment(area, pe);
            EXPECT_TRUE(seg.contains(addr));
        }
    }
}

TEST(EdgeCases, SinglePeSystemRunsEverything)
{
    // No stealing partner at all: the scheduler must not look for one.
    const auto out = run(
        "tree(0, R) :- true | R = 1.\n"
        "tree(N, R) :- N > 0 | N1 := N - 1, tree(N1, A), tree(N1, B),\n"
        "    add(A, B, R).\n"
        "add(A, B, R) :- integer(A), integer(B) | R := A + B.\n",
        "tree(6, R).", smallConfig(1));
    EXPECT_EQ(out.bindings.at("R"), "64");
    EXPECT_EQ(out.stats.steals, 0u);
    EXPECT_EQ(out.refs.areaTotal(Area::Comm), 0u);
}

TEST(EdgeCases, DeeplyNestedStructuresParseAndRun)
{
    std::string term = "0";
    for (int i = 0; i < 18; ++i)
        term = "s(" + term + ")";
    const std::string src =
        "peel(0, R) :- true | R = 0.\n"
        "peel(s(X), R) :- true | peel(X, R1), inc(R1, R).\n"
        "inc(A, R) :- integer(A) | R := A + 1.\n"
        "main(R) :- true | peel(" + term + ", R).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "18");
}

TEST(EdgeCases, ZeroArityProceduresChain)
{
    const auto out = run(
        "a :- true | b, c.\n"
        "b :- true | kl1_result(from_b).\n"
        "c :- true | kl1_result(from_c).\n",
        "a.");
    EXPECT_EQ(out.results.size(), 2u);
}

TEST(EdgeCases, LargeArityProcedure)
{
    const auto out = run(
        "big(A,B,C,D,E,F,G,H,I,J, R) :- true |\n"
        "    S1 := A + B + C + D + E,\n"
        "    S2 := F + G + H + I + J, R := S1 + S2.\n",
        "big(1,2,3,4,5,6,7,8,9,10, R).");
    EXPECT_EQ(out.bindings.at("R"), "55");
}

TEST(EdgeCasesDeath, RegisterOverflowIsCompileError)
{
    // A clause whose body needs more persistent registers than the
    // register file provides.
    std::string body;
    for (int i = 0; i < 70; ++i) {
        body += std::string(i ? ", " : "") + "p(V" + std::to_string(i) +
                ")";
    }
    EXPECT_EXIT(run("p(_).\nmain :- true | " + body + ".\n", "main."),
                ::testing::ExitedWithCode(1), "registers");
}

TEST(EdgeCasesDeath, GoalAreaExhaustion)
{
    // Spawn far more simultaneous goals than the goal area can hold.
    Kl1Config config = smallConfig(1);
    config.layout.goalWordsPerPe = 256;
    EXPECT_EXIT(run("spray(0, _) :- true | true.\n"
                    "spray(N, U) :- N > 0 | N1 := N - 1, park(U),\n"
                    "    spray(N1, U).\n"
                    "park(U) :- wait(U) | true.\n"
                    "main :- true | spray(500, U), hold(U).\n"
                    "hold(_).\n",
                    "main.", config),
                ::testing::ExitedWithCode(1), "goal area exhausted");
}

TEST(EdgeCasesDeath, SuspensionAreaExhaustion)
{
    Kl1Config config = smallConfig(1);
    config.layout.suspWordsPerPe = 4096; // 3-word records
    config.failOnDeadlock = false;
    EXPECT_EXIT(run("hang(0) :- true | true.\n"
                    "hang(N) :- N > 0 | N1 := N - 1, wait1(W),\n"
                    "    hang(N1).\n"
                    "wait1(W) :- wait(W) | true.\n",
                    "hang(3000).", config),
                ::testing::ExitedWithCode(1),
                "suspension area exhausted");
}

TEST(EdgeCases, ManyProceduresCompileAndDispatch)
{
    // 200 procedures with WaitInt clause selection across them.
    std::string src;
    for (int i = 0; i < 200; ++i) {
        src += "p" + std::to_string(i) + "(R) :- true | R = " +
               std::to_string(i * 3) + ".\n";
    }
    src += "main(R) :- true | p137(R).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "411");
}

TEST(EdgeCases, TinyCacheGeometryStillCorrect)
{
    // One set, one way, one-word blocks: the most degenerate legal cache.
    Kl1Config config = smallConfig(2);
    config.cache.geometry = {1, 1, 1};
    const auto out = run(
        "append([], Y, Z) :- true | Z = Y.\n"
        "append([H|T], Y, Z) :- true | Z = [H|W], append(T, Y, W).\n"
        "main(R) :- true | append([1,2], [3], R).\n",
        "main(R).", config);
    EXPECT_EQ(out.bindings.at("R"), "[1,2,3]");
    // With a one-block cache virtually everything misses.
    EXPECT_GT(out.cache.missRatio(), 0.5);
}

} // namespace
} // namespace pim::kl1
