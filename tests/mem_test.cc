/**
 * @file
 * Unit tests for the address-space layout, paged store and free lists.
 */

#include <gtest/gtest.h>

#include "mem/free_list.h"
#include "mem/layout.h"
#include "mem/paged_store.h"

namespace pim {
namespace {

LayoutConfig
smallConfig()
{
    LayoutConfig config;
    config.numPes = 4;
    config.instrWords = 8192;
    config.heapWordsPerPe = 1 << 16;
    config.goalWordsPerPe = 1 << 14;
    config.suspWordsPerPe = 1 << 12;
    config.commWordsPerPe = 1 << 12;
    return config;
}

TEST(Layout, InstructionFirst)
{
    const Layout layout(smallConfig());
    EXPECT_EQ(layout.instrRange().base, 0u);
    EXPECT_EQ(layout.areaOf(0), Area::Instruction);
    EXPECT_EQ(layout.areaOf(8191), Area::Instruction);
    EXPECT_EQ(layout.peOf(0), kNoPe);
}

TEST(Layout, SegmentsDisjointAndClassified)
{
    const Layout layout(smallConfig());
    for (PeId pe = 0; pe < 4; ++pe) {
        for (Area area : {Area::Heap, Area::Goal, Area::Susp, Area::Comm}) {
            const Range seg = layout.segment(area, pe);
            EXPECT_EQ(layout.areaOf(seg.base), area);
            EXPECT_EQ(layout.areaOf(seg.end() - 1), area);
            EXPECT_EQ(layout.peOf(seg.base), pe);
            EXPECT_EQ(layout.peOf(seg.end() - 1), pe);
        }
    }
}

TEST(Layout, SegmentsDoNotOverlap)
{
    const Layout layout(smallConfig());
    // Pairwise-disjointness via base ordering.
    std::vector<Range> ranges;
    ranges.push_back(layout.instrRange());
    for (Area area : {Area::Heap, Area::Goal, Area::Susp, Area::Comm})
        for (PeId pe = 0; pe < 4; ++pe)
            ranges.push_back(layout.segment(area, pe));
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        for (std::size_t j = i + 1; j < ranges.size(); ++j) {
            const bool disjoint = ranges[i].end() <= ranges[j].base ||
                                  ranges[j].end() <= ranges[i].base;
            EXPECT_TRUE(disjoint) << "ranges " << i << " and " << j;
        }
    }
}

TEST(Layout, OutOfRangeIsUnknown)
{
    const Layout layout(smallConfig());
    EXPECT_EQ(layout.areaOf(layout.totalWords()), Area::Unknown);
    EXPECT_EQ(layout.areaOf(layout.totalWords() + 12345), Area::Unknown);
}

TEST(Layout, BlocksNeverStraddleAreas)
{
    // Segment bases are 4K-aligned, so any power-of-two block <= 4K words
    // lies in exactly one area.
    const Layout layout(smallConfig());
    for (Area area : {Area::Heap, Area::Goal, Area::Susp, Area::Comm}) {
        for (PeId pe = 0; pe < 4; ++pe) {
            EXPECT_EQ(layout.segment(area, pe).base % 4096, 0u);
        }
    }
}

TEST(Layout, DescribeMentionsAreaAndPe)
{
    const Layout layout(smallConfig());
    const Range heap1 = layout.segment(Area::Heap, 1);
    const std::string text = layout.describe(heap1.base + 5);
    EXPECT_NE(text.find("heap"), std::string::npos);
    EXPECT_NE(text.find("pe1"), std::string::npos);
}

TEST(PagedStore, ZeroInitialized)
{
    PagedStore store(1 << 20);
    EXPECT_EQ(store.read(0), 0u);
    EXPECT_EQ(store.read((1 << 20) - 1), 0u);
    EXPECT_EQ(store.pagesAllocated(), 0u);
}

TEST(PagedStore, ReadBack)
{
    PagedStore store(1 << 20);
    store.write(12345, 0xdeadbeef);
    EXPECT_EQ(store.read(12345), 0xdeadbeefu);
    EXPECT_EQ(store.read(12346), 0u);
    EXPECT_EQ(store.pagesAllocated(), 1u);
}

TEST(PagedStore, SparseAllocation)
{
    PagedStore store(1ull << 30);
    store.write(0, 1);
    store.write(1ull << 29, 2);
    EXPECT_EQ(store.pagesAllocated(), 2u);
    EXPECT_EQ(store.read(1ull << 29), 2u);
}

TEST(PagedStoreDeath, OutOfRange)
{
    PagedStore store(100);
    EXPECT_DEATH(store.read(100), "read past end");
}

TEST(FreeList, BumpAllocation)
{
    FreeList list(Range{1000, 100});
    EXPECT_EQ(list.allocate(4), 1000u);
    EXPECT_EQ(list.allocate(4), 1004u);
    EXPECT_EQ(list.allocate(2), 1008u);
    EXPECT_EQ(list.liveWords(), 10u);
    EXPECT_EQ(list.carvedWords(), 10u);
}

TEST(FreeList, RecyclesLifo)
{
    FreeList list(Range{0, 100});
    const Addr a = list.allocate(4);
    const Addr b = list.allocate(4);
    list.free(a, 4);
    list.free(b, 4);
    EXPECT_EQ(list.allocate(4), b); // LIFO: most recently freed first
    EXPECT_EQ(list.allocate(4), a);
    EXPECT_EQ(list.recycleCount(), 2u);
    EXPECT_EQ(list.carvedWords(), 8u); // no new carving
}

TEST(FreeList, SizeClassesSeparate)
{
    FreeList list(Range{0, 100});
    const Addr a = list.allocate(2);
    list.free(a, 2);
    // A different size class must not reuse the freed 2-word record.
    EXPECT_NE(list.allocate(4), a);
    EXPECT_EQ(list.allocate(2), a);
}

TEST(FreeList, Exhaustion)
{
    FreeList list(Range{0, 8});
    EXPECT_NE(list.allocate(4), kNoAddr);
    EXPECT_NE(list.allocate(4), kNoAddr);
    EXPECT_EQ(list.allocate(4), kNoAddr);
    list.free(0, 4);
    EXPECT_EQ(list.allocate(4), 0u);
}

TEST(FreeListDeath, FreeOutsideRegion)
{
    FreeList list(Range{0, 8});
    (void)list.allocate(4);
    EXPECT_DEATH(list.free(100, 4), "free outside region");
}

} // namespace
} // namespace pim
