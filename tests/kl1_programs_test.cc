/**
 * @file
 * Classic concurrent-logic-programming programs as integration tests:
 * sorting, stream generators with ordered merges, trees, and stress
 * shapes (deep recursion, wide fan-out) — all on the full 8-PE machine.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

#include "kl1_test_util.h"

namespace pim::kl1 {
namespace {

using testutil::Outcome;
using testutil::run;
using testutil::smallConfig;

TEST(Kl1Programs, Quicksort)
{
    const std::string src =
        "qsort([], R) :- true | R = [].\n"
        "qsort([P|Xs], R) :- true |\n"
        "    part(P, Xs, Lo, Hi), qsort(Lo, SL), qsort(Hi, SH),\n"
        "    app(SL, [P|SH], R).\n"
        "part(_, [], Lo, Hi) :- true | Lo = [], Hi = [].\n"
        "part(P, [X|Xs], Lo, Hi) :- X < P | Lo = [X|Lo1],\n"
        "    part(P, Xs, Lo1, Hi).\n"
        "part(P, [X|Xs], Lo, Hi) :- X >= P | Hi = [X|Hi1],\n"
        "    part(P, Xs, Lo, Hi1).\n"
        "app([], Y, Z) :- true | Z = Y.\n"
        "app([H|T], Y, Z) :- true | Z = [H|W], app(T, Y, W).\n"
        "main(R) :- true | qsort([5,3,8,1,9,2,7,4,6,0], R).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"),
              "[0,1,2,3,4,5,6,7,8,9]");
}

TEST(Kl1Programs, MergeSort)
{
    const std::string src =
        "msort([], R) :- true | R = [].\n"
        "msort([X], R) :- true | R = [X].\n"
        "msort([X, Y|Xs], R) :- true |\n"
        "    split([X, Y|Xs], A, B), msort(A, SA), msort(B, SB),\n"
        "    omerge(SA, SB, R).\n"
        "split([], A, B) :- true | A = [], B = [].\n"
        "split([X|Xs], A, B) :- true | A = [X|A1], split(Xs, B, A1).\n"
        "omerge([], B, R) :- true | R = B.\n"
        "omerge(A, [], R) :- true | R = A.\n"
        "omerge([X|A], [Y|B], R) :- X =< Y | R = [X|R1],\n"
        "    omerge(A, [Y|B], R1).\n"
        "omerge([X|A], [Y|B], R) :- X > Y | R = [Y|R1],\n"
        "    omerge([X|A], B, R1).\n"
        "main(R) :- true | msort([7,2,9,1,8,3,6,4,5], R).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"),
              "[1,2,3,4,5,6,7,8,9]");
}

TEST(Kl1Programs, HammingNumbers)
{
    // Ordered three-way merge of the 2x/3x/5x streams. Committed choice
    // is eager, so the streams are bounded by value (<= Lim) rather
    // than driven lazily by a consumer.
    const std::string src =
        "scale(_, [], _, R) :- true | R = [].\n"
        "scale(K, [X|Xs], Lim, R) :- X * K =< Lim |\n"
        "    Y := X * K, R = [Y|R1], scale(K, Xs, Lim, R1).\n"
        "scale(K, [X|_], Lim, R) :- X * K > Lim | R = [].\n"
        "omerge([], B, R) :- true | R = B.\n"
        "omerge(A, [], R) :- true | R = A.\n"
        "omerge([X|A], [Y|B], R) :- X < Y | R = [X|R1],\n"
        "    omerge(A, [Y|B], R1).\n"
        "omerge([X|A], [Y|B], R) :- X > Y | R = [Y|R1],\n"
        "    omerge([X|A], B, R1).\n"
        "omerge([X|A], [Y|B], R) :- X =:= Y | R = [X|R1],\n"
        "    omerge(A, B, R1).\n"
        "ham(Lim, H) :- true | H = [1|T],\n"
        "    scale(2, H, Lim, H2), scale(3, H, Lim, H3),\n"
        "    scale(5, H, Lim, H5),\n"
        "    omerge(H2, H3, M1), omerge(M1, H5, T).\n"
        "main(R) :- true | ham(16, R).\n";
    const Outcome out = run(src, "main(R).", smallConfig(2));
    EXPECT_EQ(out.bindings.at("R"), "[1,2,3,4,5,6,8,9,10,12,15,16]");
}

TEST(Kl1Programs, BinaryTreeInsertAndSum)
{
    const std::string src =
        "insert(leaf, X, T) :- true | T = node(leaf, X, leaf).\n"
        "insert(node(L, V, R), X, T) :- X < V |\n"
        "    T = node(L1, V, R), insert(L, X, L1).\n"
        "insert(node(L, V, R), X, T) :- X >= V |\n"
        "    T = node(L, V, R1), insert(R, X, R1).\n"
        "build([], T, Out) :- true | Out = T.\n"
        "build([X|Xs], T, Out) :- true | insert(T, X, T1),\n"
        "    build(Xs, T1, Out).\n"
        "tsum(leaf, S) :- true | S = 0.\n"
        "tsum(node(L, V, R), S) :- true |\n"
        "    tsum(L, SL), tsum(R, SR), add3(SL, V, SR, S).\n"
        "add3(A, B, C, S) :- integer(A), integer(C) | S := A + B + C.\n"
        "main(R) :- true | build([8,3,5,9,1,7,2], leaf, T), tsum(T, R).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "35");
}

TEST(Kl1Programs, DeepRecursionStress)
{
    const std::string src =
        "down(0, R) :- true | R = done.\n"
        "down(N, R) :- N > 0 | N1 := N - 1, down(N1, R).\n";
    const Outcome out = run(src, "down(50000, R).");
    EXPECT_EQ(out.bindings.at("R"), "done");
    EXPECT_EQ(out.stats.reductions, 50001u);
}

TEST(Kl1Programs, WideFanOutJoin)
{
    // 512 independent workers joined by a combining tree.
    const std::string src =
        "work(I, R) :- true | R := I * I mod 97.\n"
        "fan(Lo, Hi, R) :- Lo =:= Hi | work(Lo, R).\n"
        "fan(Lo, Hi, R) :- Lo < Hi |\n"
        "    Mid := (Lo + Hi) // 2, Mid1 := Mid + 1,\n"
        "    fan(Lo, Mid, A), fan(Mid1, Hi, B), join(A, B, R).\n"
        "join(A, B, R) :- integer(A), integer(B) | R := A + B.\n";
    const Outcome out = run(src, "fan(1, 512, R).", smallConfig(8));
    // Host mirror.
    long expected = 0;
    for (int i = 1; i <= 512; ++i)
        expected += i * i % 97;
    EXPECT_EQ(out.bindings.at("R"), std::to_string(expected));
    EXPECT_GT(out.stats.steals, 0u);
}

TEST(Kl1Programs, LongListThroughCachePressure)
{
    // A 20000-element list walked twice: far larger than the 1-Kword
    // test caches, exercising eviction and refetch of heap data.
    const std::string src =
        "build(0, L) :- true | L = [].\n"
        "build(N, L) :- N > 0 | N1 := N - 1, L = [N|T], build(N1, T).\n"
        "sum([], A, R) :- true | R = A.\n"
        "sum([X|Xs], A, R) :- true | A1 := A + X, sum(Xs, A1, R).\n"
        "main(R) :- true | build(20000, L), sum(L, 0, S1),\n"
        "    again(S1, L, R).\n"
        "again(S1, L, R) :- integer(S1) | sum(L, 0, S2),\n"
        "    fin(S1, S2, R).\n"
        "fin(S1, S2, R) :- integer(S2) | R := S1 + S2.\n";
    const Outcome out = run(src, "main(R).", smallConfig(1));
    EXPECT_EQ(out.bindings.at("R"), "400020000"); // 2 * n(n+1)/2
    EXPECT_GT(out.cache.evictions, 100u);
}

TEST(Kl1Programs, QueensCount)
{
    // The former Puzzle stand-in, kept as a program test: exhaustive
    // N-queens counting with consed occupancy lists and a
    // short-circuiting parallel and3 join.
    const std::string src =
        "queens(N, C) :- true | place(0, N, [], [], [], C).\n"
        "place(N, N, _, _, _, C) :- true | C = 1.\n"
        "place(I, N, Cols, D1, D2, C) :- I < N |\n"
        "    lsum(Cs, 0, C), rows(I, N, 0, Cols, D1, D2, Cs).\n"
        "rows(_, N, N, _, _, _, Cs) :- true | Cs = [].\n"
        "rows(I, N, R, Cols, D1, D2, Cs) :- R < N | Cs = [C|Cs1],\n"
        "    tryq(I, N, R, Cols, D1, D2, C), R1 := R + 1,\n"
        "    rows(I, N, R1, Cols, D1, D2, Cs1).\n"
        "tryq(I, N, R, Cols, D1, D2, C) :- true |\n"
        "    P1 := R + I, P2 := R - I,\n"
        "    safe(R, P1, P2, Cols, D1, D2, Ok),\n"
        "    cont(Ok, I, N, R, P1, P2, Cols, D1, D2, C).\n"
        "cont(no, _, _, _, _, _, _, _, _, C) :- true | C = 0.\n"
        "cont(yes, I, N, R, P1, P2, Cols, D1, D2, C) :- true |\n"
        "    I1 := I + 1,\n"
        "    place(I1, N, [R|Cols], [P1|D1], [P2|D2], C).\n"
        "safe(R, P1, P2, Cols, D1, D2, Ok) :- true |\n"
        "    nin(R, Cols, O1), nin(P1, D1, O2), nin(P2, D2, O3),\n"
        "    and3(O1, O2, O3, Ok).\n"
        "nin(_, [], O) :- true | O = yes.\n"
        "nin(X, [X|_], O) :- true | O = no.\n"
        "nin(X, [Y|T], O) :- X =\\= Y | nin(X, T, O).\n"
        "and3(no, _, _, O) :- true | O = no.\n"
        "and3(_, no, _, O) :- true | O = no.\n"
        "and3(_, _, no, O) :- true | O = no.\n"
        "and3(yes, yes, yes, O) :- true | O = yes.\n"
        "lsum([], A, R) :- true | R = A.\n"
        "lsum([X|Xs], A, R) :- integer(X) | A1 := A + X,\n"
        "    lsum(Xs, A1, R).\n";
    EXPECT_EQ(run(src, "queens(6, R).").bindings.at("R"), "4");
    EXPECT_EQ(run(src, "queens(7, R).").bindings.at("R"), "40");
}

TEST(Kl1Programs, AckermannSmall)
{
    const std::string src =
        "ack(0, N, R) :- true | R := N + 1.\n"
        "ack(M, 0, R) :- M > 0 | M1 := M - 1, ack(M1, 1, R).\n"
        "ack(M, N, R) :- M > 0, N > 0 | N1 := N - 1,\n"
        "    ack(M, N1, R1), go(M, R1, R).\n"
        "go(M, R1, R) :- integer(R1) | M1 := M - 1, ack(M1, R1, R).\n";
    EXPECT_EQ(run(src, "ack(2, 3, R).").bindings.at("R"), "9");
    EXPECT_EQ(run(src, "ack(3, 3, R).").bindings.at("R"), "61");
}

TEST(Kl1Programs, RandomizedSortDifferential)
{
    // Differential testing: random inputs sorted by the KL1 quicksort
    // must match std::sort, across seeds and PE counts.
    const std::string src =
        "qsort([], R) :- true | R = [].\n"
        "qsort([P|Xs], R) :- true |\n"
        "    part(P, Xs, Lo, Hi), qsort(Lo, SL), qsort(Hi, SH),\n"
        "    app(SL, [P|SH], R).\n"
        "part(_, [], Lo, Hi) :- true | Lo = [], Hi = [].\n"
        "part(P, [X|Xs], Lo, Hi) :- X < P | Lo = [X|Lo1],\n"
        "    part(P, Xs, Lo1, Hi).\n"
        "part(P, [X|Xs], Lo, Hi) :- X >= P | Hi = [X|Hi1],\n"
        "    part(P, Xs, Lo, Hi1).\n"
        "app([], Y, Z) :- true | Z = Y.\n"
        "app([H|T], Y, Z) :- true | Z = [H|W], app(T, Y, W).\n";
    Rng rng(1234);
    for (int trial = 0; trial < 6; ++trial) {
        const std::size_t n = 5 + rng.below(40);
        std::vector<long> values;
        std::string list = "[";
        for (std::size_t i = 0; i < n; ++i) {
            const long v = static_cast<long>(rng.below(200)) - 100;
            values.push_back(v);
            list += (i ? "," : "") + std::to_string(v);
        }
        list += "]";
        std::sort(values.begin(), values.end());
        std::string expected = "[";
        for (std::size_t i = 0; i < n; ++i)
            expected += (i ? "," : "") + std::to_string(values[i]);
        expected += "]";
        const std::uint32_t pes = 1 + trial % 4;
        const Outcome out =
            run(src, "qsort(" + list + ", R).", smallConfig(pes));
        EXPECT_EQ(out.bindings.at("R"), expected)
            << "trial " << trial << " on " << pes << " PEs";
    }
}

} // namespace
} // namespace pim::kl1
