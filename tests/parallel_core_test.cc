/**
 * @file
 * Parallel discrete-event core (ctest -L par, docs/ARCHITECTURE.md
 * "Threading model"): EpochGate rendezvous/ordering units, the
 * jobs-invariance contract (identical fingerprint, makespan, bus
 * transactions, protocol hash and reference counters for any --par-jobs
 * count), the serialized-mode differential against a hand-rolled legacy
 * driver loop, and a randomized shape x jobs fuzz including locks,
 * optimized commands, write-through and clustered topologies.
 */

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "sim/par_workload.h"
#include "sim/parallel_core.h"
#include "sim/system.h"

namespace pim {
namespace {

// ---------------------------------------------------------------------
// EpochGate units
// ---------------------------------------------------------------------

TEST(EpochGateTest, SinglePartyAlwaysLeads)
{
    EpochGate gate(1);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(gate.arrive());
        EXPECT_EQ(gate.generation(), static_cast<std::uint64_t>(i));
        gate.release();
    }
}

TEST(EpochGateTest, ExactlyOneLeaderPerGeneration)
{
    constexpr unsigned kParties = 4;
    constexpr int kGenerations = 200;
    EpochGate gate(kParties);
    std::atomic<int> leaders{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kParties; ++t) {
        threads.emplace_back([&] {
            for (int g = 0; g < kGenerations; ++g) {
                if (gate.arrive()) {
                    leaders.fetch_add(1, std::memory_order_relaxed);
                    gate.release();
                }
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(leaders.load(), kGenerations);
}

TEST(EpochGateTest, LeaderWritesVisibleAfterRelease)
{
    // The happens-before chain the parallel core relies on: plain
    // (non-atomic) writes by the epoch leader must be visible to every
    // party once arrive() returns from the next rendezvous.
    constexpr unsigned kParties = 3;
    constexpr int kGenerations = 500;
    EpochGate gate(kParties);
    std::uint64_t shared = 0; // plain variable, ordered only by the gate
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kParties; ++t) {
        threads.emplace_back([&] {
            for (int g = 0; g < kGenerations; ++g) {
                if (gate.arrive()) {
                    shared = static_cast<std::uint64_t>(g) + 1;
                    gate.release();
                } else if (shared != static_cast<std::uint64_t>(g) + 1) {
                    failed.store(true);
                }
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_FALSE(failed.load());
}

// ---------------------------------------------------------------------
// Jobs invariance
// ---------------------------------------------------------------------

/** Everything the issue requires to be byte-identical across jobs. */
struct Observables {
    std::uint64_t fingerprint = 0;
    Cycles makespan = 0;
    std::uint64_t busTransactions = 0;
    Cycles busCycles = 0;
    Cycles interClusterCycles = 0;
    std::uint64_t protocolHash = 0;
    std::uint64_t refTotal = 0;
    std::uint64_t refWrites = 0;
    std::vector<std::uint64_t> snapshot;

    bool
    operator==(const Observables& o) const
    {
        return fingerprint == o.fingerprint && makespan == o.makespan &&
               busTransactions == o.busTransactions &&
               busCycles == o.busCycles &&
               interClusterCycles == o.interClusterCycles &&
               protocolHash == o.protocolHash && refTotal == o.refTotal &&
               refWrites == o.refWrites && snapshot == o.snapshot;
    }
};

std::uint64_t
busTransactionTotal(const BusStats& bus)
{
    std::uint64_t total = 0;
    for (int p = 0; p < kNumBusPatterns; ++p)
        total += bus.transByPattern[p];
    return total;
}

Observables
collect(const System& system, std::uint64_t mem_words,
        std::uint64_t fingerprint)
{
    Observables obs;
    obs.fingerprint = fingerprint;
    obs.makespan = system.makespan();
    obs.busTransactions = busTransactionTotal(system.bus().stats());
    obs.busCycles = system.bus().stats().totalCycles;
    obs.interClusterCycles = system.bus().stats().interClusterCycles;
    obs.protocolHash = system.protocolHash(0, mem_words);
    obs.refTotal = system.refStats().total();
    obs.refWrites = system.refStats().opTotal(MemOp::W);
    obs.snapshot = system.protocolSnapshot(0, mem_words);
    return obs;
}

SystemConfig
baseConfig(std::uint32_t pes, std::uint64_t mem_words)
{
    SystemConfig config;
    config.numPes = pes;
    config.memoryWords = mem_words;
    return config;
}

Observables
runShape(const ParShape& shape, SystemConfig config, unsigned jobs,
         ParallelRunResult* result_out = nullptr)
{
    ParWorkloadSource source(shape, config.numPes,
                             config.cache.geometry.blockWords);
    config.memoryWords = source.memoryWords();
    System system(config);
    ParallelCoreOptions options;
    options.jobs = jobs;
    const ParallelRunResult result =
        runParallelCore(system, source, options);
    if (result_out != nullptr)
        *result_out = result;
    return collect(system, config.memoryWords, result.fingerprint);
}

TEST(ParallelCoreTest, JobsInvarianceDefaultShape)
{
    ParShape shape;
    shape.stepsPerPe = 3000;
    const SystemConfig config = baseConfig(8, 0);
    ParallelRunResult seq_result;
    const Observables seq = runShape(shape, config, 1, &seq_result);
    EXPECT_TRUE(seq_result.serialized);
    EXPECT_EQ(seq_result.epochs, 0u);
    EXPECT_EQ(seq_result.completedRefs, 8u * 3000u);
    EXPECT_GT(seq.busTransactions, 0u);

    for (unsigned jobs : {2u, 3u, 8u}) {
        ParallelRunResult par_result;
        const Observables par = runShape(shape, config, jobs, &par_result);
        EXPECT_FALSE(par_result.serialized) << "jobs=" << jobs;
        EXPECT_GT(par_result.epochs, 0u) << "jobs=" << jobs;
        EXPECT_GT(par_result.localRefs, 0u) << "jobs=" << jobs;
        EXPECT_EQ(par_result.completedRefs, seq_result.completedRefs);
        EXPECT_TRUE(par == seq) << "jobs=" << jobs;
    }
}

TEST(ParallelCoreTest, JobsInvarianceLockMix)
{
    ParShape shape;
    shape.stepsPerPe = 2000;
    shape.lockPct = 25;
    shape.sharedPct = 5;
    const SystemConfig config = baseConfig(6, 0);
    const Observables seq = runShape(shape, config, 1);
    for (unsigned jobs : {2u, 6u})
        EXPECT_TRUE(runShape(shape, config, jobs) == seq)
            << "jobs=" << jobs;
}

TEST(ParallelCoreTest, JobsInvarianceOptimizedCommands)
{
    ParShape shape;
    shape.stepsPerPe = 2000;
    shape.optPct = 30;
    shape.sharedPct = 4;
    const SystemConfig config = baseConfig(8, 0);
    const Observables seq = runShape(shape, config, 1);
    for (unsigned jobs : {2u, 8u})
        EXPECT_TRUE(runShape(shape, config, jobs) == seq)
            << "jobs=" << jobs;
}

TEST(ParallelCoreTest, JobsInvarianceWriteThrough)
{
    ParShape shape;
    shape.stepsPerPe = 1500;
    SystemConfig config = baseConfig(4, 0);
    config.cache.writeThrough = true;
    const Observables seq = runShape(shape, config, 1);
    for (unsigned jobs : {2u, 4u})
        EXPECT_TRUE(runShape(shape, config, jobs) == seq)
            << "jobs=" << jobs;
}

TEST(ParallelCoreTest, JobsInvarianceClusteredTopology)
{
    ParShape shape;
    shape.stepsPerPe = 2000;
    shape.sharedPct = 6;
    SystemConfig config = baseConfig(8, 0);
    config.cluster.clusterSize = 2;
    config.cluster.hopCycles = 2;
    const Observables seq = runShape(shape, config, 1);
    EXPECT_GT(seq.interClusterCycles, 0u);
    for (unsigned jobs : {2u, 8u})
        EXPECT_TRUE(runShape(shape, config, jobs) == seq)
            << "jobs=" << jobs;
}

TEST(ParallelCoreTest, JobsLargerThanPes)
{
    ParShape shape;
    shape.stepsPerPe = 1000;
    const SystemConfig config = baseConfig(3, 0);
    const Observables seq = runShape(shape, config, 1);
    EXPECT_TRUE(runShape(shape, config, 8) == seq);
}

// ---------------------------------------------------------------------
// Serialized mode is the legacy driver, bit for bit
// ---------------------------------------------------------------------

TEST(ParallelCoreTest, SerializedMatchesManualDriverLoop)
{
    ParShape shape;
    shape.stepsPerPe = 2000;
    shape.lockPct = 15;
    shape.sharedPct = 5;
    shape.optPct = 10;
    const std::uint32_t pes = 6;

    // Manual legacy loop: always step the (clock, pe)-minimal live PE,
    // pulling its next operation only after selecting it.
    ParWorkloadSource manual_source(shape, pes, 4);
    SystemConfig config = baseConfig(pes, manual_source.memoryWords());
    Observables manual;
    {
        System system(config);
        std::vector<std::optional<ParOp>> pending(pes);
        std::vector<bool> done(pes, false);
        while (true) {
            PeId best = kNoPe;
            for (PeId pe = 0; pe < pes; ++pe) {
                if (done[pe] || system.parked(pe))
                    continue;
                if (best == kNoPe ||
                    system.clock(pe) < system.clock(best))
                    best = pe;
            }
            if (best == kNoPe)
                break;
            if (!pending[best].has_value()) {
                ParOp op;
                if (!manual_source.next(best, &op)) {
                    done[best] = true;
                    continue;
                }
                pending[best] = op;
            }
            const ParOp& op = *pending[best];
            const System::Access access =
                system.access(best, op.op, op.addr, op.area, op.wdata);
            if (!access.lockWait) {
                manual_source.complete(best, op, access.data);
                pending[best].reset();
            }
        }
        manual = collect(system, config.memoryWords, 0);
    }

    ParWorkloadSource core_source(shape, pes, 4);
    System system(config);
    ParallelCoreOptions options;
    options.jobs = 1;
    const ParallelRunResult result =
        runParallelCore(system, core_source, options);
    EXPECT_TRUE(result.serialized);
    Observables core = collect(system, config.memoryWords, 0);
    EXPECT_TRUE(core == manual);

    // And the concurrent mode agrees with both (fingerprint aside,
    // which the manual loop does not compute).
    ParWorkloadSource par_source(shape, pes, 4);
    System par_system(config);
    options.jobs = 4;
    runParallelCore(par_system, par_source, options);
    Observables par = collect(par_system, config.memoryWords, 0);
    EXPECT_TRUE(par == manual);
}

// ---------------------------------------------------------------------
// Serialized-mode degradation triggers
// ---------------------------------------------------------------------

TEST(ParallelCoreTest, ObserverForcesSerializedMode)
{
    class CountingObserver : public AccessObserver
    {
      public:
        std::uint64_t seen = 0;
        void
        afterAccess(PeId, MemOp, Addr, Area, Word, Word, bool) override
        {
            seen += 1;
        }
    };

    ParShape shape;
    shape.stepsPerPe = 500;
    const std::uint32_t pes = 4;
    ParWorkloadSource source(shape, pes, 4);
    SystemConfig config = baseConfig(pes, source.memoryWords());
    System system(config);
    CountingObserver observer;
    system.addAccessObserver(&observer);

    ParallelCoreOptions options;
    options.jobs = 8;
    EXPECT_TRUE(parallelCoreSerialized(system, source, options));
    const ParallelRunResult result =
        runParallelCore(system, source, options);
    EXPECT_TRUE(result.serialized);
    EXPECT_EQ(result.epochs, 0u);
    EXPECT_GE(observer.seen, result.completedRefs);

    // Same shape, unobserved: identical observables, concurrent mode.
    ParWorkloadSource par_source(shape, pes, 4);
    System par_system(config);
    EXPECT_FALSE(parallelCoreSerialized(par_system, par_source, options));
    const ParallelRunResult par =
        runParallelCore(par_system, par_source, options);
    EXPECT_FALSE(par.serialized);
    EXPECT_EQ(par.completedRefs, result.completedRefs);
    EXPECT_EQ(par.fingerprint, result.fingerprint);
    EXPECT_EQ(par_system.makespan(), system.makespan());
}

TEST(ParallelCoreTest, ZeroHitCyclesForcesSerializedMode)
{
    ParShape shape;
    shape.stepsPerPe = 300;
    const std::uint32_t pes = 4;
    ParWorkloadSource source(shape, pes, 4);
    SystemConfig config = baseConfig(pes, source.memoryWords());
    config.cache.hitCycles = 0;
    System system(config);
    ParallelCoreOptions options;
    options.jobs = 4;
    EXPECT_TRUE(parallelCoreSerialized(system, source, options));
    const ParallelRunResult result =
        runParallelCore(system, source, options);
    EXPECT_TRUE(result.serialized);
    EXPECT_GT(result.completedRefs, 0u);
}

// ---------------------------------------------------------------------
// Randomized shape x jobs fuzz
// ---------------------------------------------------------------------

TEST(ParallelCoreTest, FuzzShapesAcrossJobs)
{
    Rng rng(20260809);
    for (int iteration = 0; iteration < 12; ++iteration) {
        ParShape shape;
        shape.stepsPerPe = 200 + rng.below(600);
        shape.sharedWords = 64 << rng.below(4);
        shape.privateWords = 256 << rng.below(3);
        shape.sharedPct = rng.below(30);
        shape.writePct = rng.below(100);
        shape.lockPct = rng.chance(1, 2) ? rng.below(30) : 0;
        shape.optPct = rng.chance(1, 2) ? rng.below(40) : 0;
        shape.seed = rng.next();

        SystemConfig config = baseConfig(2 + rng.below(7), 0);
        if (rng.chance(1, 3))
            config.cluster.clusterSize = 2;
        if (rng.chance(1, 4))
            config.cache.writeThrough = true;
        if (rng.chance(1, 3))
            config.snoopFilter = false;

        const Observables seq = runShape(shape, config, 1);
        const unsigned jobs = 2 + rng.below(7);
        const Observables par = runShape(shape, config, jobs);
        EXPECT_TRUE(par == seq)
            << "iteration " << iteration << " jobs=" << jobs
            << " pes=" << config.numPes << " seed=" << shape.seed;
    }
}

} // namespace
} // namespace pim
