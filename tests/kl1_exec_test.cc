/**
 * @file
 * End-to-end KL1 execution tests on small programs: unification,
 * arithmetic, streams, suspension/resumption, guard semantics.
 */

#include <gtest/gtest.h>

#include "kl1_test_util.h"

namespace pim::kl1 {
namespace {

using testutil::Outcome;
using testutil::run;
using testutil::smallConfig;

TEST(Kl1Exec, FactSucceeds)
{
    const Outcome out = run("main.\n", "main.");
    EXPECT_EQ(out.stats.reductions, 1u);
    EXPECT_EQ(out.stats.suspensions, 0u);
}

TEST(Kl1Exec, BindQueryVariable)
{
    const Outcome out = run("main(X) :- true | X = 42.\n", "main(R).");
    EXPECT_EQ(out.bindings.at("R"), "42");
}

TEST(Kl1Exec, BuildStructure)
{
    const Outcome out =
        run("main(X) :- true | X = f(1, [a,b], g(Y)), Y = 2.\n",
            "main(R).");
    EXPECT_EQ(out.bindings.at("R"), "f(1,[a,b],g(2))");
}

TEST(Kl1Exec, Arithmetic)
{
    const Outcome out = run(
        "main(X) :- true | A := 6 * 7, B := A - 2, X := B // 4.\n",
        "main(R).");
    EXPECT_EQ(out.bindings.at("R"), "10");
}

TEST(Kl1Exec, ClauseSelectionByConstant)
{
    const std::string src =
        "f(0, R) :- true | R = zero.\n"
        "f(1, R) :- true | R = one.\n"
        "f(N, R) :- N > 1 | R = many.\n";
    EXPECT_EQ(run(src, "f(0,R).").bindings.at("R"), "zero");
    EXPECT_EQ(run(src, "f(1,R).").bindings.at("R"), "one");
    EXPECT_EQ(run(src, "f(7,R).").bindings.at("R"), "many");
}

TEST(Kl1Exec, Append)
{
    const std::string src =
        "append([], Y, Z) :- true | Z = Y.\n"
        "append([H|T], Y, Z) :- true | Z = [H|W], append(T, Y, W).\n"
        "main(R) :- true | append([1,2,3], [4,5], R).\n";
    const Outcome out = run(src, "main(R).");
    EXPECT_EQ(out.bindings.at("R"), "[1,2,3,4,5]");
    EXPECT_EQ(out.stats.reductions, 5u); // main + 4 append reductions
}

TEST(Kl1Exec, NaiveReverse)
{
    const std::string src =
        "append([], Y, Z) :- true | Z = Y.\n"
        "append([H|T], Y, Z) :- true | Z = [H|W], append(T, Y, W).\n"
        "nrev([], R) :- true | R = [].\n"
        "nrev([H|T], R) :- true | nrev(T, S), append(S, [H], R).\n"
        "main(R) :- true | nrev([1,2,3,4,5,6], R).\n";
    const Outcome out = run(src, "main(R).");
    EXPECT_EQ(out.bindings.at("R"), "[6,5,4,3,2,1]");
}

TEST(Kl1Exec, GuardArithmeticFilter)
{
    const std::string src =
        "evens([], R) :- true | R = [].\n"
        "evens([X|Xs], R) :- X mod 2 =:= 0 | R = [X|R1], evens(Xs, R1).\n"
        "evens([X|Xs], R) :- X mod 2 =\\= 0 | evens(Xs, R).\n"
        "main(R) :- true | evens([1,2,3,4,5,6,7,8], R).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "[2,4,6,8]");
}

TEST(Kl1Exec, CounterLoop)
{
    const std::string src =
        "count(0, Acc, R) :- true | R = Acc.\n"
        "count(N, Acc, R) :- N > 0 | N1 := N - 1, Acc1 := Acc + N,\n"
        "                    count(N1, Acc1, R).\n";
    EXPECT_EQ(run("x.\n" + src, "count(100, 0, R).").bindings.at("R"),
              "5050");
}

TEST(Kl1Exec, StreamProducerConsumerSuspends)
{
    // The consumer races ahead of the producer and must suspend on the
    // unbound stream tail.
    // produce/3 is spawned (queued); consume/3 tail-executes first and
    // finds the stream unbound.
    const std::string src =
        "main(R) :- true | produce(1, 50, S), consume(S, 0, R).\n"
        "produce(I, N, S) :- I > N | S = [].\n"
        "produce(I, N, S) :- I =< N | S = [I|S1], I1 := I + 1,\n"
        "                    produce(I1, N, S1).\n"
        "consume([], Acc, R) :- true | R = Acc.\n"
        "consume([X|Xs], Acc, R) :- true | Acc1 := Acc + X,\n"
        "                           consume(Xs, Acc1, R).\n";
    const Outcome out = run(src, "main(R).", smallConfig(1));
    EXPECT_EQ(out.bindings.at("R"), "1275");
    // With one PE and depth-first scheduling the consumer is spawned
    // first and must suspend at least once.
    EXPECT_GT(out.stats.suspensions, 0u);
    EXPECT_EQ(out.stats.suspensions, out.stats.resumptions);
}

TEST(Kl1Exec, PrimesSieve)
{
    const std::string src =
        "primes(N, Ps) :- true | gen(2, N, S), sift(S, Ps).\n"
        "gen(I, N, S) :- I > N | S = [].\n"
        "gen(I, N, S) :- I =< N | S = [I|T], I1 := I + 1, gen(I1, N, T).\n"
        "sift([], Ps) :- true | Ps = [].\n"
        "sift([P|Xs], Ps) :- true | Ps = [P|Ps1], filter(P, Xs, Ys),\n"
        "                    sift(Ys, Ps1).\n"
        "filter(_, [], Ys) :- true | Ys = [].\n"
        "filter(P, [X|Xs], Ys) :- X mod P =:= 0 | filter(P, Xs, Ys).\n"
        "filter(P, [X|Xs], Ys) :- X mod P =\\= 0 | Ys = [X|Ys1],\n"
        "                         filter(P, Xs, Ys1).\n";
    const Outcome out = run(src, "primes(30, R).");
    EXPECT_EQ(out.bindings.at("R"), "[2,3,5,7,11,13,17,19,23,29]");
}

TEST(Kl1Exec, SynchronizingMerge)
{
    // sum/3 waits for both inputs (integer guards) before committing.
    // sum/3 tail-executes before either producer has run.
    const std::string src =
        "main(R) :- true | slowone(A), slowtwo(B), sum(A, B, R).\n"
        "slowone(A) :- true | A = 30.\n"
        "slowtwo(B) :- true | B = 12.\n"
        "sum(A, B, C) :- integer(A), integer(B) | C := A + B.\n";
    const Outcome out = run(src, "main(R).");
    EXPECT_EQ(out.bindings.at("R"), "42");
    EXPECT_GE(out.stats.suspensions, 1u);
}

TEST(Kl1Exec, WaitGuard)
{
    const std::string src =
        "main(R) :- true | echo(X, R), X = hello.\n"
        "echo(X, R) :- wait(X) | R = X.\n";
    EXPECT_EQ(run(src, "main(R).", smallConfig(1)).bindings.at("R"),
              "hello");
}

TEST(Kl1Exec, OtherwiseClause)
{
    const std::string src =
        "classify(X, R) :- X < 0 | R = negative.\n"
        "classify(X, R) :- X =:= 0 | R = zero.\n"
        "classify(_, R) :- otherwise | R = positive.\n";
    EXPECT_EQ(run(src, "classify(-3,R).").bindings.at("R"), "negative");
    EXPECT_EQ(run(src, "classify(0,R).").bindings.at("R"), "zero");
    EXPECT_EQ(run(src, "classify(9,R).").bindings.at("R"), "positive");
}

TEST(Kl1Exec, StructuralGuardEquality)
{
    const std::string src =
        "same(X, Y, R) :- X == Y | R = yes.\n"
        "same(X, Y, R) :- X \\= Y | R = no.\n";
    EXPECT_EQ(run(src, "same(f(1,[2]), f(1,[2]), R).").bindings.at("R"),
              "yes");
    EXPECT_EQ(run(src, "same(f(1,[2]), f(1,[3]), R).").bindings.at("R"),
              "no");
    EXPECT_EQ(run(src, "same(a, b, R).").bindings.at("R"), "no");
}


TEST(Kl1Exec, OtherwiseWaitsForEarlierClausesToDecide)
{
    // `otherwise` commits only once all preceding guards have failed
    // definitely. Here check/2 is called before X is bound: the first
    // clause cannot be decided yet, so the call must suspend rather
    // than commit to the otherwise clause (which would answer nonpos
    // for a positive X).
    const std::string src =
        "check(X, R) :- X > 0 | R = pos.\n"
        "check(_, R) :- otherwise | R = nonpos.\n"
        "main(R) :- true | later(X), check(X, R).\n"
        "later(X) :- true | X = 5.\n";
    const Outcome out = run(src, "main(R).", smallConfig(1));
    EXPECT_EQ(out.bindings.at("R"), "pos");
    EXPECT_GE(out.stats.suspensions, 1u);
}

TEST(Kl1Exec, OtherwiseCommitsWhenEarlierClausesFailDefinitely)
{
    const std::string src =
        "check(X, R) :- X > 0 | R = pos.\n"
        "check(_, R) :- otherwise | R = nonpos.\n";
    EXPECT_EQ(run(src, "check(-2, R).").bindings.at("R"), "nonpos");
    EXPECT_EQ(run(src, "check(3, R).").bindings.at("R"), "pos");
}

TEST(Kl1Exec, ResultBuiltinCollectsInOrder)
{
    const std::string src =
        "emit(0) :- true | true.\n"
        "emit(N) :- N > 0 | kl1_result(N), N1 := N - 1, emit(N1).\n";
    const Outcome out = run(src, "emit(3).", smallConfig(1));
    ASSERT_EQ(out.results.size(), 3u);
    EXPECT_EQ(out.results[0], "3");
    EXPECT_EQ(out.results[1], "2");
    EXPECT_EQ(out.results[2], "1");
}

TEST(Kl1Exec, ActiveUnifyTwoUnboundVariables)
{
    const std::string src =
        "main(R) :- true | link(A, B), A = B, B = 7, R = A.\n"
        "link(_, _).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "7");
}

TEST(Kl1Exec, DeepStructureUnification)
{
    const std::string src =
        "main(R) :- true | X = f(g(1), [a, h(B)], B), \n"
        "                  X = f(g(1), [a, h(5)], C), R = pair(B, C).\n";
    EXPECT_EQ(run(src, "main(R).").bindings.at("R"), "pair(5,5)");
}

TEST(Kl1ExecDeath, FailureIsFatal)
{
    EXPECT_EXIT(run("p(1).\n", "p(2)."), ::testing::ExitedWithCode(1),
                "goal failed");
}

TEST(Kl1ExecDeath, UnificationFailureIsFatal)
{
    EXPECT_EXIT(run("main :- true | 1 = 2.\n", "main."),
                ::testing::ExitedWithCode(1), "unification failure");
}

TEST(Kl1ExecDeath, DeadlockDetected)
{
    // X is never produced: the goal suspends forever.
    EXPECT_EXIT(run("main(R) :- true | echo(X, R).\n"
                    "echo(X, R) :- wait(X) | R = X.\n",
                    "main(R)."),
                ::testing::ExitedWithCode(1), "deadlock");
}

TEST(Kl1Exec, DeadlockToleratedWhenConfigured)
{
    Kl1Config config = smallConfig();
    config.failOnDeadlock = false;
    const Outcome out = run("main(R) :- true | echo(X, R).\n"
                            "echo(X, R) :- wait(X) | R = X.\n",
                            "main(R).", config);
    EXPECT_EQ(out.stats.deadlockedGoals, 1u);
}

TEST(Kl1Exec, MemoryRefsAreCounted)
{
    const Outcome out = run("main(X) :- true | X = [1,2,3].\n", "main(R).");
    EXPECT_GT(out.stats.memoryRefs, 10u);
    EXPECT_GT(out.stats.instructions, 5u);
    EXPECT_GT(out.stats.makespan, 0u);
}

} // namespace
} // namespace pim::kl1
