/**
 * @file
 * Exact bus-side residency filter tests (docs/PERFORMANCE.md).
 *
 * Two layers: unit tests of the ResidencyFilter mask container itself,
 * and system-level exactness tests asserting that after every kind of
 * protocol event — fills, swap-out evictions, write invalidations, the
 * ER supplier purge, RI, flushAll, lock acquire/release and a lock
 * surviving its block's eviction — the per-block copy mask equals the
 * ground truth (which PEs' caches actually hold the block) and the lock
 * mask equals which PEs' lock directories hold an entry on the block.
 *
 * The final test is the on/off differential: the same reference stream
 * driven through a filtered and an unfiltered System must produce
 * identical read values, protocol hashes and bus statistics.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bus/residency_filter.h"
#include "common/rng.h"
#include "sim/system.h"

namespace pim {
namespace {

// ---------------------------------------------------------------------
// ResidencyFilter unit behavior.
// ---------------------------------------------------------------------

TEST(ResidencyFilterUnit, CopyMaskTracksAddRemove)
{
    ResidencyFilter filter;
    filter.setBlockWords(4);
    EXPECT_EQ(filter.copyMask(0), 0u);

    filter.addCopy(0, 8);
    filter.addCopy(3, 8);
    EXPECT_EQ(filter.copyMask(8), (1ull << 0) | (1ull << 3));
    EXPECT_EQ(filter.copyMask(4), 0u);

    filter.removeCopy(0, 8);
    EXPECT_EQ(filter.copyMask(8), 1ull << 3);
    // Removing an absent copy is a no-op, not an error.
    filter.removeCopy(5, 8);
    EXPECT_EQ(filter.copyMask(8), 1ull << 3);
    EXPECT_TRUE(filter.exact());
}

TEST(ResidencyFilterUnit, LockMaskIsIdempotent)
{
    ResidencyFilter filter;
    filter.setBlockWords(4);
    filter.setLockResident(2, 12, true);
    filter.setLockResident(2, 12, true);
    EXPECT_EQ(filter.lockMask(12), 1ull << 2);
    filter.setLockResident(2, 12, false);
    filter.setLockResident(2, 12, false);
    EXPECT_EQ(filter.lockMask(12), 0u);
}

TEST(ResidencyFilterUnit, CopyAndLockMasksAreIndependent)
{
    ResidencyFilter filter;
    filter.setBlockWords(4);
    filter.addCopy(1, 0);
    filter.setLockResident(2, 0, true);
    EXPECT_EQ(filter.copyMask(0), 1ull << 1);
    EXPECT_EQ(filter.lockMask(0), 1ull << 2);
}

TEST(ResidencyFilterUnit, MultiWordMasksAreExactAcrossWordBoundaries)
{
    ResidencyFilter filter;
    filter.setBlockWords(4);
    EXPECT_EQ(filter.maskWords(), 1u);
    filter.registerPe(63);
    EXPECT_EQ(filter.maskWords(), 1u);
    filter.registerPe(64);
    EXPECT_EQ(filter.maskWords(), 2u);
    filter.registerPe(128);
    EXPECT_EQ(filter.maskWords(), 3u);
    // Registering wide PEs never degrades exactness — the multi-word
    // masks cover them (the old single-word design went inexact here).
    EXPECT_TRUE(filter.exact());

    PeBitset expect(3);
    for (const PeId pe : {63u, 64u, 65u, 127u, 128u}) {
        filter.addCopy(pe, 8);
        expect.set(pe);
    }
    EXPECT_EQ(filter.copyMask(8), expect);
    EXPECT_EQ(filter.copyMask(8).count(), 5u);
    EXPECT_TRUE(filter.anyCopyExcept(8, 63));

    filter.removeCopy(64, 8);
    expect.clear(64);
    EXPECT_EQ(filter.copyMask(8), expect);

    // The walk visits holders in ascending PE order across mask words.
    std::vector<PeId> visited;
    filter.forEachCopyHolder(8, 63, [&](PeId pe) { visited.push_back(pe); });
    EXPECT_EQ(visited, (std::vector<PeId>{65, 127, 128}));
}

TEST(ResidencyFilterUnit, RegisterAfterContentRelaysExistingMasks)
{
    ResidencyFilter filter;
    filter.setBlockWords(4);
    filter.addCopy(3, 8);
    filter.setLockResident(5, 8, true);
    // Growing the mask width re-lays existing pages; no bit may be lost.
    filter.registerPe(200);
    EXPECT_EQ(filter.maskWords(), 4u);
    EXPECT_EQ(filter.copyMask(8), 1ull << 3);
    EXPECT_EQ(filter.lockMask(8), 1ull << 5);
    filter.addCopy(200, 8);
    PeBitset expect(4);
    expect.set(3);
    expect.set(200);
    EXPECT_EQ(filter.copyMask(8), expect);
}

TEST(ResidencyFilterUnit, RangeQueriesRespectWordBoundaries)
{
    ResidencyFilter filter;
    filter.setBlockWords(4);
    filter.registerPe(191);
    filter.addCopy(64, 8);
    filter.setLockResident(127, 8, true);
    EXPECT_FALSE(filter.anyCopyInRange(8, 0, 64));
    EXPECT_TRUE(filter.anyCopyInRange(8, 64, 65));
    EXPECT_TRUE(filter.anyCopyInRange(8, 0, 128));
    EXPECT_FALSE(filter.anyCopyInRange(8, 65, 192));
    EXPECT_FALSE(filter.anyLockInRange(8, 0, 127));
    EXPECT_TRUE(filter.anyLockInRange(8, 127, 128));
    EXPECT_FALSE(filter.anyLockInRange(8, 128, 192));
}

TEST(ResidencyFilterUnit, NonPowerOfTwoBlockWordsStillIndexes)
{
    ResidencyFilter filter;
    filter.setBlockWords(3); // falls back to division indexing
    filter.addCopy(0, 0);
    filter.addCopy(1, 3);
    filter.addCopy(2, 6);
    EXPECT_EQ(filter.copyMask(0), 1ull << 0);
    EXPECT_EQ(filter.copyMask(3), 1ull << 1);
    EXPECT_EQ(filter.copyMask(6), 1ull << 2);
    EXPECT_EQ(filter.trackedCopyBlocks(), 3u);
}

// ---------------------------------------------------------------------
// System-level exactness: masks versus cache/lock-directory ground
// truth after every protocol event kind.
// ---------------------------------------------------------------------

/** Tiny geometry so evictions are easy to force: 2 sets x 2 ways. */
SystemConfig
tinyConfig(std::uint32_t pes)
{
    SystemConfig config;
    config.numPes = pes;
    config.cache.geometry.blockWords = 4;
    config.cache.geometry.sets = 2;
    config.cache.geometry.ways = 2;
    config.memoryWords = 1 << 16;
    config.validate();
    return config;
}

/**
 * Assert that for every block base in [lo, hi) the filter's copy mask
 * has exactly the bits of the PEs whose cache holds the block, and the
 * lock mask exactly the PEs whose lock directory has an entry on it.
 */
void
expectExactMasks(const System& system, Addr lo, Addr hi)
{
    const std::uint32_t block =
        system.cache(0).config().geometry.blockWords;
    const std::uint32_t pes = system.config().numPes;
    for (Addr base = lo / block * block; base < hi; base += block) {
        PeBitset expect_copies((pes + 63) / 64);
        PeBitset expect_locks((pes + 63) / 64);
        for (PeId pe = 0; pe < pes; ++pe) {
            if (system.cache(pe).present(base))
                expect_copies.set(pe);
            for (const auto& [word, state] :
                 system.cache(pe).lockDirectory().entries()) {
                if (word / block * block == base)
                    expect_locks.set(pe);
            }
        }
        EXPECT_EQ(system.bus().residency().copyMask(base), expect_copies)
            << "copy mask of block " << base;
        EXPECT_EQ(system.bus().residency().lockMask(base), expect_locks)
            << "lock mask of block " << base;
    }
}

TEST(ResidencyMasks, FillSharesAndWriteInvalidates)
{
    System system(tinyConfig(4));
    // All four PEs read block 0 -> four copies.
    for (PeId pe = 0; pe < 4; ++pe)
        system.access(pe, MemOp::R, 0, Area::Heap);
    EXPECT_EQ(system.bus().residency().copyMask(0), 0xfull);
    expectExactMasks(system, 0, 64);

    // PE2 writes -> the other three copies are invalidated.
    system.access(2, MemOp::W, 1, Area::Heap, 42);
    EXPECT_EQ(system.bus().residency().copyMask(0), 1ull << 2);
    expectExactMasks(system, 0, 64);
}

TEST(ResidencyMasks, SwapOutEvictionClearsTheMask)
{
    System system(tinyConfig(2));
    const Addr block = 4;
    // 2 sets x 4-word blocks: bases 0,32,64 all map to set 0. Three
    // distinct blocks in a 2-way set force an eviction.
    system.access(0, MemOp::R, 0, Area::Heap);
    system.access(0, MemOp::W, 32, Area::Heap, 7); // dirty victim
    system.access(0, MemOp::R, 64, Area::Heap);
    std::uint32_t resident = 0;
    for (Addr base : {Addr{0}, Addr{32}, Addr{64}})
        resident += system.cache(0).present(base) ? 1 : 0;
    EXPECT_EQ(resident, 2u); // one of the three was swapped out
    expectExactMasks(system, 0, 128);
    (void)block;
}

TEST(ResidencyMasks, ExclusiveReadPurgesTheSupplier)
{
    System system(tinyConfig(2));
    // PE0 creates the record with DW (exclusive dirty), PE1 consumes it
    // with ER: the supplier's copy must be purged and its mask bit gone.
    system.access(0, MemOp::DW, 8, Area::Heap, 99);
    EXPECT_EQ(system.bus().residency().copyMask(8), 1ull << 0);
    const System::Access got = system.access(1, MemOp::ER, 8, Area::Heap);
    EXPECT_EQ(got.data, 99u);
    EXPECT_FALSE(system.cache(0).present(8));
    EXPECT_EQ(system.bus().residency().copyMask(8), 1ull << 1);
    expectExactMasks(system, 0, 64);
}

TEST(ResidencyMasks, ReadPurgeAndReadInvalidate)
{
    System system(tinyConfig(2));
    system.access(0, MemOp::DW, 8, Area::Heap, 5);
    // RP: read and purge own copy without keeping it.
    system.access(0, MemOp::RP, 8, Area::Heap);
    expectExactMasks(system, 0, 64);
    // RI: read once, invalidating every cached copy.
    system.access(0, MemOp::W, 12, Area::Heap, 6);
    system.access(1, MemOp::RI, 12, Area::Heap);
    expectExactMasks(system, 0, 64);
}

TEST(ResidencyMasks, FlushAllClearsEveryMaskBit)
{
    System system(tinyConfig(3));
    Rng rng(42);
    for (int step = 0; step < 200; ++step) {
        const PeId pe = static_cast<PeId>(rng.below(3));
        const Addr addr = rng.below(256);
        if (rng.chance(1, 3))
            system.access(pe, MemOp::W, addr, Area::Heap, rng.next());
        else
            system.access(pe, MemOp::R, addr, Area::Heap);
    }
    expectExactMasks(system, 0, 256);
    for (PeId pe = 0; pe < 3; ++pe)
        system.cache(pe).flushAll();
    for (Addr base = 0; base < 256; base += 4)
        EXPECT_EQ(system.bus().residency().copyMask(base), 0u);
    expectExactMasks(system, 0, 256);
}

TEST(ResidencyMasks, LockResidencyFollowsAcquireAndRelease)
{
    System system(tinyConfig(2));
    system.access(0, MemOp::LR, 20, Area::Heap);
    EXPECT_EQ(system.bus().residency().lockMask(20), 1ull << 0);
    expectExactMasks(system, 0, 64);
    system.access(0, MemOp::UW, 20, Area::Heap, 11);
    EXPECT_EQ(system.bus().residency().lockMask(20), 0u);

    system.access(1, MemOp::LR, 21, Area::Heap);
    system.access(1, MemOp::U, 21, Area::Heap);
    EXPECT_EQ(system.bus().residency().lockMask(20), 0u);
    expectExactMasks(system, 0, 64);
}

TEST(ResidencyMasks, LockSurvivesBlockEviction)
{
    System system(tinyConfig(2));
    // Lock a word, then evict its block from the holder's cache (set 0
    // holds bases 0,32,64). The lock directory entry — and therefore
    // the lock mask bit — must survive while the copy bit goes away.
    system.access(0, MemOp::LR, 2, Area::Heap);
    system.access(0, MemOp::W, 32, Area::Heap, 1);
    system.access(0, MemOp::W, 64, Area::Heap, 2);
    system.access(0, MemOp::R, 96, Area::Heap);
    EXPECT_EQ(system.bus().residency().lockMask(0), 1ull << 0);
    expectExactMasks(system, 0, 128);
    system.access(0, MemOp::U, 2, Area::Heap);
    EXPECT_EQ(system.bus().residency().lockMask(0), 0u);
    expectExactMasks(system, 0, 128);
}

// ---------------------------------------------------------------------
// Wide machines: the masks stay exact past the 64-PE word boundary.
// ---------------------------------------------------------------------

TEST(ResidencyMasks, WideMachineMasksStayExact)
{
    System system(tinyConfig(128));
    // Sharers straddling the mask-word boundary, then an invalidating
    // write from the far side.
    for (const PeId pe : {0u, 63u, 64u, 65u, 127u})
        system.access(pe, MemOp::R, 0, Area::Heap);
    PeBitset expect(2);
    for (const PeId pe : {0u, 63u, 64u, 65u, 127u})
        expect.set(pe);
    EXPECT_EQ(system.bus().residency().copyMask(0), expect);
    system.access(127, MemOp::W, 1, Area::Heap, 7);
    PeBitset only127(2);
    only127.set(127);
    EXPECT_EQ(system.bus().residency().copyMask(0), only127);
    expectExactMasks(system, 0, 64);

    // DW/ER hand-off across the boundary purges the wide supplier.
    system.access(64, MemOp::DW, 8, Area::Heap, 99);
    const System::Access got = system.access(65, MemOp::ER, 8, Area::Heap);
    EXPECT_EQ(got.data, 99u);
    EXPECT_FALSE(system.cache(64).present(8));
    PeBitset only65(2);
    only65.set(65);
    EXPECT_EQ(system.bus().residency().copyMask(8), only65);

    // RP purges a wide PE's own copy.
    system.access(100, MemOp::DW, 16, Area::Heap, 5);
    system.access(100, MemOp::RP, 16, Area::Heap);
    EXPECT_EQ(system.bus().residency().copyMask(16), 0u);
    expectExactMasks(system, 0, 64);

    // Evictions on a wide PE (2 sets: bases 0,32,64,96 map to set 0).
    for (const Addr base : {Addr{32}, Addr{64}, Addr{96}, Addr{128}})
        system.access(90, MemOp::R, base, Area::Heap);
    expectExactMasks(system, 0, 256);

    // Locks across the boundary, then flushAll clears every copy bit.
    system.access(70, MemOp::LR, 40, Area::Heap);
    PeBitset lock70(2);
    lock70.set(70);
    EXPECT_EQ(system.bus().residency().lockMask(40), lock70);
    system.access(70, MemOp::U, 40, Area::Heap);
    for (PeId pe = 0; pe < 128; ++pe)
        system.cache(pe).flushAll();
    for (Addr base = 0; base < 256; base += 4)
        EXPECT_EQ(system.bus().residency().copyMask(base), 0u);
    expectExactMasks(system, 0, 256);
}

// ---------------------------------------------------------------------
// On/off differential: filtering must be observationally invisible.
// ---------------------------------------------------------------------

TEST(ResidencyDifferential, FilterOnAndOffAreBitIdentical)
{
    SystemConfig on_config = tinyConfig(4);
    SystemConfig off_config = on_config;
    off_config.snoopFilter = false;
    System filtered(on_config);
    System broadcast(off_config);
    ASSERT_TRUE(filtered.bus().snoopFilterEnabled());
    ASSERT_FALSE(broadcast.bus().snoopFilterEnabled());

    // Drive both systems through the same mixed stream: reads, writes,
    // optimized commands over a record area, and non-blocking lock
    // traffic. Each PE's lock word sits in its own block (LH inhibits a
    // fetch when *any* word of the block is locked elsewhere, so shared
    // blocks would park PEs), which keeps the stream retry-free.
    Rng rng(2026);
    std::vector<Addr> records;
    std::vector<bool> holds(4, false);
    Addr next_record = 512;
    for (int step = 0; step < 3000; ++step) {
        const PeId pe = static_cast<PeId>(rng.below(4));
        const std::uint64_t roll = rng.below(100);
        MemOp op;
        Addr addr;
        Word wdata = 0;
        if (roll < 20) {
            addr = 448 + pe * 4;
            if (holds[pe]) {
                op = rng.chance(1, 2) ? MemOp::U : MemOp::UW;
                if (op == MemOp::UW)
                    wdata = rng.next();
                holds[pe] = false;
            } else {
                op = MemOp::LR;
                holds[pe] = true;
            }
        } else if (roll < 30) {
            if (!records.empty() && rng.chance(1, 2)) {
                addr = records.back();
                records.pop_back();
                op = rng.chance(1, 2) ? MemOp::ER : MemOp::RP;
            } else {
                op = MemOp::DW;
                addr = next_record;
                next_record += 4;
                wdata = rng.next();
                records.push_back(addr);
            }
        } else {
            op = roll < 60 ? MemOp::W : MemOp::R;
            addr = rng.below(256);
            if (op == MemOp::W)
                wdata = rng.next();
        }
        const System::Access a =
            filtered.access(pe, op, addr, Area::Heap, wdata);
        const System::Access b =
            broadcast.access(pe, op, addr, Area::Heap, wdata);
        ASSERT_FALSE(a.lockWait) << "step " << step;
        ASSERT_FALSE(b.lockWait) << "step " << step;
        ASSERT_EQ(a.data, b.data) << "step " << step;
    }

    EXPECT_EQ(filtered.protocolHash(0, 4096),
              broadcast.protocolHash(0, 4096));
    for (int pattern = 0; pattern < kNumBusPatterns; ++pattern) {
        EXPECT_EQ(filtered.bus().stats().transByPattern[pattern],
                  broadcast.bus().stats().transByPattern[pattern]);
        EXPECT_EQ(filtered.bus().stats().cyclesByPattern[pattern],
                  broadcast.bus().stats().cyclesByPattern[pattern]);
    }
    expectExactMasks(filtered, 0, 1024);
}

TEST(ResidencyDifferential, WideMachineFilterOnAndOffAreBitIdentical)
{
    SystemConfig on_config = tinyConfig(128);
    SystemConfig off_config = on_config;
    off_config.snoopFilter = false;
    System filtered(on_config);
    System broadcast(off_config);

    // Same structure as the 4-PE differential, with the lock words and
    // record area moved clear of each other for 128 PEs (each PE's lock
    // word in its own block keeps the stream retry-free).
    Rng rng(128128);
    std::vector<Addr> records;
    std::vector<bool> holds(128, false);
    Addr next_record = 8192;
    for (int step = 0; step < 2000; ++step) {
        const PeId pe = static_cast<PeId>(rng.below(128));
        const std::uint64_t roll = rng.below(100);
        MemOp op;
        Addr addr;
        Word wdata = 0;
        if (roll < 20) {
            addr = 4096 + pe * 4;
            if (holds[pe]) {
                op = rng.chance(1, 2) ? MemOp::U : MemOp::UW;
                if (op == MemOp::UW)
                    wdata = rng.next();
                holds[pe] = false;
            } else {
                op = MemOp::LR;
                holds[pe] = true;
            }
        } else if (roll < 30) {
            if (!records.empty() && rng.chance(1, 2)) {
                addr = records.back();
                records.pop_back();
                op = rng.chance(1, 2) ? MemOp::ER : MemOp::RP;
            } else {
                op = MemOp::DW;
                addr = next_record;
                next_record += 4;
                wdata = rng.next();
                records.push_back(addr);
            }
        } else {
            op = roll < 60 ? MemOp::W : MemOp::R;
            addr = rng.below(256);
            if (op == MemOp::W)
                wdata = rng.next();
        }
        const System::Access a =
            filtered.access(pe, op, addr, Area::Heap, wdata);
        const System::Access b =
            broadcast.access(pe, op, addr, Area::Heap, wdata);
        ASSERT_FALSE(a.lockWait) << "step " << step;
        ASSERT_FALSE(b.lockWait) << "step " << step;
        ASSERT_EQ(a.data, b.data) << "step " << step;
    }

    EXPECT_EQ(filtered.protocolHash(0, 16384),
              broadcast.protocolHash(0, 16384));
    for (int pattern = 0; pattern < kNumBusPatterns; ++pattern) {
        EXPECT_EQ(filtered.bus().stats().transByPattern[pattern],
                  broadcast.bus().stats().transByPattern[pattern]);
        EXPECT_EQ(filtered.bus().stats().cyclesByPattern[pattern],
                  broadcast.bus().stats().cyclesByPattern[pattern]);
    }
    expectExactMasks(filtered, 0, 1024);
    expectExactMasks(filtered, 4096, 4608);
}

} // namespace
} // namespace pim
