/**
 * @file
 * kl1run: the command-line KL1/FGHC interpreter on the simulated PIM
 * machine — the tool a downstream user reaches for first.
 *
 *   $ ./kl1run program.fghc "main(10, R)." [options]
 *
 * Options:
 *   --pes N          number of processing elements (default 8)
 *   --policy P       all | none | heap | goal | comm (default all)
 *   --block W        cache block words (default 4)
 *   --ways W         cache associativity (default 4)
 *   --capacity W     cache data words per PE (default 4096)
 *   --illinois       use the copy-back-on-share baseline protocol
 *   --gc             enable stop-and-copy heap GC (semispace heaps)
 *   --heap W         heap words per PE (default 2^22)
 *   --stats          print the full statistics breakdown
 *   --report         print every standard report table
 *   --disasm         print the compiled KL1-B code and exit
 *   --trace FILE     record the memory-reference trace to FILE
 */

#include <cstdio>
#include <iostream>
#include <fstream>
#include <sstream>

#include "common/options.h"
#include "common/sim_fault.h"
#include "common/strutil.h"
#include "common/table.h"
#include "common/xassert.h"
#include "kl1/compiler.h"
#include "kl1/emulator.h"
#include "kl1/parser.h"
#include "sim/report.h"
#include "trace/trace_file.h"

int
main(int argc, char** argv)
{
    using namespace pim;
    using namespace pim::kl1;

    const Options opts = Options::parse(argc, argv);
    if (opts.positional().size() < 1) {
        std::fprintf(stderr,
                     "usage: kl1run program.fghc [\"query(Args, R).\"] "
                     "[--pes N] [--policy all|none|heap|goal|comm]\n"
                     "       [--block W --ways N --capacity W] "
                     "[--illinois] [--stats] [--disasm] [--trace F]\n");
        return 1;
    }

    std::ifstream file(opts.positional()[0]);
    if (!file)
        PIM_FATAL("cannot open ", opts.positional()[0]);
    std::stringstream buffer;
    buffer << file.rdbuf();

    Module module;
    try {
        module = compileProgram(
            parseProgram(buffer.str(), opts.positional()[0]));
    } catch (const SimFault& fault) {
        std::fprintf(stderr, "kl1run: %s\n", fault.what());
        return 1;
    }
    if (opts.getBool("disasm")) {
        std::fputs(module.disassembleAll().c_str(), stdout);
        return 0;
    }

    const std::string query = opts.positional().size() >= 2
                                  ? opts.positional()[1]
                                  : "main(R).";

    Kl1Config config;
    config.numPes = static_cast<std::uint32_t>(opts.getInt("pes", 8));
    const std::string policy = opts.getString("policy", "all");
    if (policy == "all") {
        config.policy = OptPolicy::all();
    } else if (policy == "none") {
        config.policy = OptPolicy::none();
    } else if (policy == "heap") {
        config.policy = OptPolicy::heapOnly();
    } else if (policy == "goal") {
        config.policy = OptPolicy::goalOnly();
    } else if (policy == "comm") {
        config.policy = OptPolicy::commOnly();
    } else {
        PIM_FATAL("unknown --policy ", policy);
    }
    config.cache.geometry = CacheGeometry::forCapacity(
        opts.getInt("capacity", 4096),
        static_cast<std::uint32_t>(opts.getInt("block", 4)),
        static_cast<std::uint32_t>(opts.getInt("ways", 4)));
    config.cache.copybackOnShare = opts.getBool("illinois");
    config.enableGc = opts.getBool("gc");
    config.layout.heapWordsPerPe =
        static_cast<std::uint64_t>(opts.getInt("heap", 1 << 22));

    Emulator emu(std::move(module), config);

    std::unique_ptr<TraceWriter> writer;
    const std::string trace_path = opts.getString("trace", "");
    if (!trace_path.empty()) {
        writer = std::make_unique<TraceWriter>(trace_path,
                                               config.numPes);
        emu.system().setRefObserver(
            [&](const MemRef& ref) { writer->append(ref); });
    }

    RunStats stats;
    try {
        stats = emu.run(query);
    } catch (const SimFault& fault) {
        std::fprintf(stderr, "kl1run: %s\n", fault.what());
        return 1;
    }

    for (const std::string& result : emu.results())
        std::printf("result: %s\n", result.c_str());
    for (const auto& [name, value] : emu.queryBindings())
        std::printf("%s = %s\n", name.c_str(), value.c_str());

    std::printf("\n%s reductions, %s suspensions, %s steals, "
                "%s cycles\n",
                fmtCount(stats.reductions).c_str(),
                fmtCount(stats.suspensions).c_str(),
                fmtCount(stats.steals).c_str(),
                fmtCount(stats.makespan).c_str());
    if (stats.gc.collections > 0) {
        std::printf("%s GCs: %s words copied, %s reclaimed\n",
                    fmtCount(stats.gc.collections).c_str(),
                    fmtCount(stats.gc.wordsCopied).c_str(),
                    fmtCount(stats.gc.wordsReclaimed).c_str());
    }

    if (writer) {
        std::printf("trace: %s refs -> %s\n",
                    fmtCount(writer->recordsWritten()).c_str(),
                    trace_path.c_str());
        writer->close();
    }

    if (opts.getBool("report"))
        std::fputs(reportAll(emu.system()).c_str(), stdout);
    if (opts.getBool("stats")) {
        const BusStats& bus = emu.system().bus().stats();
        const CacheStats cache = emu.system().totalCacheStats();
        const RefStats& refs = emu.system().refStats();
        Table table("statistics");
        table.setHeader({"metric", "value"});
        table.addRow({"memory references", fmtCount(refs.total())});
        table.addRow({"instructions",
                      fmtCount(stats.instructions)});
        table.addRow({"bus cycles", fmtCount(bus.totalCycles)});
        table.addRow({"miss ratio %",
                      fmtFixed(cache.missRatio() * 100, 2)});
        table.addRow({"memory busy cycles",
                      fmtCount(bus.memoryBusyCycles)});
        table.addRow({"swap-outs", fmtCount(cache.swapOuts)});
        table.addRow({"purges (ER/RP)", fmtCount(cache.purges)});
        table.addRow({"DW no-fetch", fmtCount(cache.dwAllocNoFetch)});
        table.addRow({"LR zero-bus %",
                      fmtFixed(cache.lrCount == 0
                                   ? 0.0
                                   : 100.0 *
                                         static_cast<double>(
                                             cache.lrHitExclusive) /
                                         static_cast<double>(
                                             cache.lrCount),
                               1)});
        Table areas("\nbus cycles by area");
        areas.setHeader({"area", "cycles"});
        for (int a = 0; a < kNumAreas; ++a) {
            areas.addRow({areaName(static_cast<Area>(a)),
                          fmtCount(bus.cyclesByArea[a])});
        }
        table.print(std::cout);
        areas.print(std::cout);
    }
    return 0;
}
