/**
 * @file
 * Annotated walkthrough of the optimized memory commands (paper Section
 * 3.2): drives a 2-PE system through the exact goal-record handoff the
 * paper uses to motivate DW / ER / RP, printing the cache states and
 * bus costs after every step — then repeats it with plain reads and
 * writes to show what the commands save.
 *
 *   $ ./protocol_trace
 *   $ ./protocol_trace --timeline-out=handoff.json \
 *         --metrics-out=metrics.json --report-json=report.json \
 *         --attribution-out=attribution.json
 *
 * The observability flags (docs/OBSERVABILITY.md) record the optimized
 * handoff: a Perfetto-loadable Chrome trace-event timeline, the metrics
 * registry (counters + histograms), the reportAllJson document, and the
 * miss/cycle attribution report (which also lands inside the report
 * document when both flags are given).
 */

#include <cstdio>
#include <string>

#include "common/options.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/report_json.h"
#include "sim/system.h"

namespace {

using namespace pim;

void
show(const System& sys, Addr rec, const char* what)
{
    std::printf("%-52s bus=%3llu  pe0:%s,%s pe1:%s,%s  mem-writes=%llu\n",
                what,
                static_cast<unsigned long long>(
                    sys.bus().stats().totalCycles),
                cacheStateName(sys.cache(0).stateOf(rec)),
                cacheStateName(sys.cache(0).stateOf(rec + 4)),
                cacheStateName(sys.cache(1).stateOf(rec)),
                cacheStateName(sys.cache(1).stateOf(rec + 4)),
                static_cast<unsigned long long>(
                    sys.bus().stats().memoryWrites));
}

void
runHandoff(bool optimized, const Options& opts)
{
    std::printf("\n=== 8-word goal record handoff, %s ===\n",
                optimized ? "optimized (DW/ER/RP)" : "plain (W/R)");
    std::printf("states shown per PE for the record's two blocks\n\n");

    SystemConfig config;
    config.numPes = 2;
    config.memoryWords = 1 << 20;
    System sys(config);
    const Addr rec = 512; // block aligned

    // Observability taps: the optimized handoff is the interesting run,
    // so only it is recorded (both runs start their clocks at zero and
    // would overlap on one timeline).
    TimelineRecorder timeline;
    MetricsRegistry metrics;
    const auto& geom = config.cache.geometry;
    AttributionEngine attribution(config.numPes, config.timing,
                                  geom.blockWords, geom.ways * geom.sets);
    const std::string timeline_out =
        optimized ? opts.getString("timeline-out", "") : "";
    const std::string metrics_out =
        optimized ? opts.getString("metrics-out", "") : "";
    const std::string report_out =
        optimized ? opts.getString("report-json", "") : "";
    const std::string attribution_out =
        optimized ? opts.getString("attribution-out", "") : "";
    if (!timeline_out.empty())
        sys.addEventSink(&timeline);
    if (!metrics_out.empty())
        sys.addEventSink(&metrics);
    if (!attribution_out.empty())
        sys.addEventSink(&attribution);

    // The sender creates the record: DW allocates without fetching.
    for (Addr a = rec; a < rec + 8; ++a) {
        sys.access(0, optimized ? MemOp::DW : MemOp::W, a, Area::Goal,
                   a * 3);
    }
    show(sys, rec, optimized ? "pe0 writes record with DW"
                             : "pe0 writes record with W (fetch-on-write)");

    // The receiver consumes it: ER invalidates the supplier, the final
    // RP purges the receiver's own copy.
    Word check = 0;
    for (Addr a = rec; a < rec + 8; ++a) {
        MemOp op = MemOp::R;
        if (optimized)
            op = a + 1 == rec + 8 ? MemOp::RP : MemOp::ER;
        check += sys.access(1, op, a, Area::Goal, 0).data;
    }
    show(sys, rec, optimized ? "pe1 reads record with ER/RP"
                             : "pe1 reads record with R");
    std::printf("   (checksum %llu, expected %llu)\n",
                static_cast<unsigned long long>(check),
                static_cast<unsigned long long>(
                    (rec * 8 + 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7) * 3));

    // The record is dead; the sender recycles the same words for the
    // next goal. With the optimized commands neither PE holds a copy
    // and nothing was ever written back to memory.
    for (Addr a = rec; a < rec + 8; ++a) {
        sys.access(0, optimized ? MemOp::DW : MemOp::W, a, Area::Goal,
                   a * 5);
    }
    show(sys, rec, "pe0 recycles the record for the next goal");

    std::printf("\ntotal: %llu bus cycles, %llu memory writes, "
                "%llu purges, %llu DW no-fetch allocations\n",
                static_cast<unsigned long long>(
                    sys.bus().stats().totalCycles),
                static_cast<unsigned long long>(
                    sys.bus().stats().memoryWrites),
                static_cast<unsigned long long>(
                    sys.totalCacheStats().purges),
                static_cast<unsigned long long>(
                    sys.totalCacheStats().dwAllocNoFetch));

    if (!timeline_out.empty() && timeline.writeFile(timeline_out)) {
        std::printf("timeline: %llu events -> %s\n",
                    static_cast<unsigned long long>(timeline.eventCount()),
                    timeline_out.c_str());
    }
    if (!metrics_out.empty() && metrics.writeFile(metrics_out))
        std::printf("metrics -> %s\n", metrics_out.c_str());
    if (!attribution_out.empty() &&
        attribution.writeFile(attribution_out, sys.bus().stats())) {
        std::printf("attribution: %llu classified misses -> %s\n",
                    static_cast<unsigned long long>(
                        attribution.classifiedMisses()),
                    attribution_out.c_str());
    }
    if (!report_out.empty() &&
        reportAllJsonFile(sys, report_out,
                          attribution_out.empty() ? nullptr
                                                  : &attribution)) {
        std::printf("report -> %s\n", report_out.c_str());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const pim::Options opts = pim::Options::parse(argc, argv);
    std::printf("The write-once/read-once goal handoff of paper "
                "Section 2.3,\nwith and without the Section 3.2 "
                "commands.\n");
    runHandoff(true, opts);
    runHandoff(false, opts);
    std::printf("\nThe optimized handoff moves each block exactly once"
                "\n(cache-to-cache) and leaves no residue to swap in or"
                "\nout — the 'meaningless swap-in and swap-out' the"
                "\npaper's commands exist to avoid.\n");
    return 0;
}
