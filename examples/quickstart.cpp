/**
 * @file
 * Quickstart: compile a small FGHC program, run it on a simulated
 * 4-PE PIM machine, and inspect the answer and the cache statistics.
 *
 *   $ ./quickstart
 *
 * This is the smallest end-to-end use of the library: parse ->
 * compile -> emulate on the coherent-cache model -> read results.
 */

#include <cstdio>

#include "common/strutil.h"
#include "kl1/compiler.h"
#include "kl1/emulator.h"
#include "kl1/parser.h"

int
main()
{
    using namespace pim;
    using namespace pim::kl1;

    // A classic stream program: generate 1..N, filter the odd numbers,
    // square them, and sum the squares. The three processes communicate
    // through shared logical variables (streams) and synchronize by
    // suspension — the execution model the PIM cache is designed for.
    const char* source = R"(
        main(N, R) :- true |
            gen(1, N, S), odds(S, T), squares(T, Q), total(Q, 0, R).

        gen(I, N, S) :- I > N  | S = [].
        gen(I, N, S) :- I =< N | S = [I|S1], I1 := I + 1, gen(I1, N, S1).

        odds([], T) :- true | T = [].
        odds([X|Xs], T) :- X mod 2 =:= 1 | T = [X|T1], odds(Xs, T1).
        odds([X|Xs], T) :- X mod 2 =:= 0 | odds(Xs, T).

        squares([], Q) :- true | Q = [].
        squares([X|Xs], Q) :- true | Y := X * X, Q = [Y|Q1],
                              squares(Xs, Q1).

        total([], Acc, R) :- true | R = Acc.
        total([X|Xs], Acc, R) :- true | A1 := Acc + X, total(Xs, A1, R).
    )";

    // 1. Parse and compile to the KL1-B abstract instruction set.
    Module module = compileProgram(parseProgram(source));
    std::printf("compiled %zu instructions (%u words of code)\n",
                module.code.size(), module.totalWords());

    // 2. Configure a machine: 4 PEs, the paper's base cache (4-Kword,
    //    4-way, 4-word blocks), all optimized commands enabled.
    Kl1Config config;
    config.numPes = 4;
    config.cache.geometry = {4, 4, 256};
    config.policy = OptPolicy::all();

    // 3. Run a query.
    Emulator emu(std::move(module), config);
    const RunStats stats = emu.run("main(100, R).");

    // 4. Read the answer and the measurements.
    for (const auto& [name, value] : emu.queryBindings())
        std::printf("%s = %s\n", name.c_str(), value.c_str());
    std::printf("\nreductions   %s\n", fmtCount(stats.reductions).c_str());
    std::printf("suspensions  %s\n", fmtCount(stats.suspensions).c_str());
    std::printf("instructions %s\n",
                fmtCount(stats.instructions).c_str());
    std::printf("memory refs  %s\n", fmtCount(stats.memoryRefs).c_str());
    std::printf("work stolen  %s goals\n", fmtCount(stats.steals).c_str());
    std::printf("makespan     %s bus-clock cycles\n",
                fmtCount(stats.makespan).c_str());

    const BusStats& bus = emu.system().bus().stats();
    const CacheStats cache = emu.system().totalCacheStats();
    std::printf("\nbus cycles   %s (miss ratio %.2f%%)\n",
                fmtCount(bus.totalCycles).c_str(),
                cache.missRatio() * 100);
    std::printf("DW no-fetch allocations: %s, blocks purged by ER/RP: "
                "%s\n",
                fmtCount(cache.dwAllocNoFetch).c_str(),
                fmtCount(cache.purges).c_str());
    std::printf("lock reads: %s (%.1f%% zero-bus)\n",
                fmtCount(cache.lrCount).c_str(),
                cache.lrCount == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(cache.lrHitExclusive) /
                          static_cast<double>(cache.lrCount));
    return 0;
}
