/**
 * @file
 * Annotated walk through the PIM lock protocol (paper Sections 3.1/4.7):
 * drives a 2-PE system by hand and narrates the LCK / LWAIT / EMP
 * transitions, the zero-cost fast paths, and the UL wakeup.
 *
 *   $ ./lock_contention
 */

#include <cstdio>

#include "sim/system.h"

namespace {

using namespace pim;

void
show(const System& sys, Addr addr, const char* what)
{
    const Cycles cycles = sys.bus().stats().totalCycles;
    std::printf("%-58s bus=%4llu  pe0:%s/%s pe1:%s/%s\n", what,
                static_cast<unsigned long long>(cycles),
                cacheStateName(sys.cache(0).stateOf(addr)),
                lockStateName(sys.cache(0).lockDirectory().stateOf(addr)),
                cacheStateName(sys.cache(1).stateOf(addr)),
                lockStateName(sys.cache(1).lockDirectory().stateOf(addr)));
}

} // namespace

int
main()
{
    SystemConfig config;
    config.numPes = 2;
    config.memoryWords = 1 << 20;
    System sys(config);
    const Addr var = 100;

    std::printf("word %llu: cache-state/lock-state per PE after each "
                "step\n\n",
                static_cast<unsigned long long>(var));
    show(sys, var, "initial");

    // A classic KL1 variable binding: lock, check, write-unlock.
    sys.access(0, MemOp::LR, var, Area::Heap, 0);
    show(sys, var, "pe0 LR   (miss: FI+LK on the bus, block exclusive)");

    sys.access(0, MemOp::UW, var, Area::Heap, 41);
    show(sys, var, "pe0 UW   (no waiter: ZERO bus cycles)");

    sys.access(0, MemOp::LR, var, Area::Heap, 0);
    show(sys, var, "pe0 LR   (hit exclusive: ZERO bus cycles)");

    // pe1 tries to read the locked word: inhibited by LH.
    const System::Access blocked =
        sys.access(1, MemOp::R, var, Area::Heap, 0);
    std::printf("\npe1 R -> lockWait=%s (LH response; pe1 parked, "
                "bus idle while busy-waiting)\n",
                blocked.lockWait ? "true" : "false");
    show(sys, var, "pe1 R    (rejected; pe0's entry is now LWAIT)");

    // The unlock must now broadcast UL to wake the waiter.
    sys.access(0, MemOp::UW, var, Area::Heap, 42);
    show(sys, var, "pe0 UW   (waiter present: UL broadcast)");
    std::printf("pe1 parked: %s\n", sys.parked(1) ? "yes" : "no");

    const System::Access retry =
        sys.access(1, MemOp::R, var, Area::Heap, 0);
    std::printf("pe1 retries R -> value %llu\n",
                static_cast<unsigned long long>(retry.data));
    show(sys, var, "pe1 R    (cache-to-cache transfer)");

    // Lock survives swap-out: evict pe0's block while locked.
    std::printf("\n-- lock survives swap-out of the locked block --\n");
    sys.access(0, MemOp::LR, var, Area::Heap, 0);
    for (Addr conflict = 4096; conflict <= 4096 * 4; conflict += 4096)
        sys.access(0, MemOp::R, conflict, Area::Heap, 0);
    show(sys, var, "pe0 LR then evictions (block gone, lock held)");
    const System::Access still_blocked =
        sys.access(1, MemOp::R, var, Area::Heap, 0);
    std::printf("pe1 R while swapped-out-and-locked -> lockWait=%s\n",
                still_blocked.lockWait ? "true" : "false");
    sys.access(0, MemOp::UW, var, Area::Heap, 43);
    show(sys, var, "pe0 UW   (refetches the block, unlocks, UL)");

    const CacheStats total = sys.totalCacheStats();
    std::printf("\ntotals: LR=%llu (zero-bus %llu), unlocks=%llu "
                "(zero-bus %llu), UL broadcasts=%llu\n",
                static_cast<unsigned long long>(total.lrCount),
                static_cast<unsigned long long>(total.lrHitExclusive),
                static_cast<unsigned long long>(total.unlockCount),
                static_cast<unsigned long long>(total.unlockNoWaiter),
                static_cast<unsigned long long>(
                    sys.bus().stats().cmdCounts[static_cast<int>(
                        BusCmd::UL)]));
    return 0;
}
