/**
 * @file
 * Trace-driven cache explorer: replay synthetic reference patterns (or a
 * recorded .pimtrace file) through the PIM cache model with a chosen
 * geometry and protocol, and print the traffic breakdown.
 *
 *   $ ./cache_explorer --pattern migratory --pes 8 --block 4 \
 *         --ways 4 --capacity 4096 [--illinois]
 *   $ ./cache_explorer --trace-in run.pimtrace
 *
 * Patterns: random, producer, migratory, heap, lock, orparallel.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/options.h"
#include "common/strutil.h"
#include "common/table.h"
#include "sim/trace_replay.h"
#include "trace/synth.h"
#include "trace/trace_file.h"

int
main(int argc, char** argv)
{
    using namespace pim;

    const Options opts = Options::parse(argc, argv);
    const std::uint32_t pes =
        static_cast<std::uint32_t>(opts.getInt("pes", 4));
    const std::uint32_t block =
        static_cast<std::uint32_t>(opts.getInt("block", 4));
    const std::uint32_t ways =
        static_cast<std::uint32_t>(opts.getInt("ways", 4));
    const std::uint64_t capacity = opts.getInt("capacity", 4096);
    const std::string pattern = opts.getString("pattern", "random");
    const std::string trace_in = opts.getString("trace-in", "");
    const std::uint64_t n = opts.getInt("n", 20000);

    std::vector<MemRef> trace;
    if (!trace_in.empty()) {
        TraceReader reader(trace_in);
        MemRef ref;
        while (reader.next(ref))
            trace.push_back(ref);
        std::printf("loaded %zu refs from %s (%u PEs)\n", trace.size(),
                    trace_in.c_str(), reader.numPes());
    } else if (pattern == "random") {
        RandomTrafficConfig config;
        config.numPes = pes;
        config.refsPerPe = n;
        config.writePctX100 = 3000;
        config.lockPctX100 = 300;
        trace = makeRandomTraffic(config);
    } else if (pattern == "producer") {
        trace = makeProducerConsumer(0, pes > 1 ? 1 : 0, pes, 0, 1 << 14,
                                     8, n / 16, true);
    } else if (pattern == "migratory") {
        trace = makeMigratory(pes, 0, 64, block,
                              static_cast<std::uint32_t>(n / 128 + 1));
    } else if (pattern == "heap") {
        trace = makeHeapGrowth(pes, 0, 1 << 20, n / 5, 4, true, 42);
    } else if (pattern == "lock") {
        trace = makeLockTraffic(pes, 0, 64, n / (2 * pes), 500, 42);
    } else if (pattern == "orparallel") {
        trace = makeOrParallel(pes, 0, 1 << 12, 1 << 16, 1 << 16, n, 200,
                               42);
    } else {
        std::fprintf(stderr, "unknown --pattern %s\n", pattern.c_str());
        return 1;
    }

    SystemConfig config;
    config.numPes = pes;
    config.cache.geometry =
        CacheGeometry::forCapacity(capacity, block, ways);
    config.cache.copybackOnShare = opts.getBool("illinois");
    // Size the backing store to cover every address in the trace.
    Addr max_addr = 1 << 20;
    for (const MemRef& ref : trace)
        max_addr = std::max(max_addr, ref.addr);
    config.memoryWords = (max_addr / 4096 + 2) * 4096;

    System sys(config);
    TraceReplay replay(sys, trace);
    replay.run();

    const BusStats& bus = sys.bus().stats();
    const CacheStats cache = sys.totalCacheStats();

    std::printf("\n%zu references, %u PEs, %lluw %u-way cache, %uw "
                "blocks (%s)\n\n",
                trace.size(), pes,
                static_cast<unsigned long long>(capacity), ways, block,
                config.cache.copybackOnShare ? "Illinois baseline"
                                             : "PIM protocol");

    Table summary("summary");
    summary.setHeader({"metric", "value"});
    summary.addRow({"bus cycles", fmtCount(bus.totalCycles)});
    summary.addRow({"miss ratio %",
                    fmtFixed(cache.missRatio() * 100, 2)});
    summary.addRow({"memory busy cycles",
                    fmtCount(bus.memoryBusyCycles)});
    summary.addRow({"memory reads", fmtCount(bus.memoryReads)});
    summary.addRow({"memory writes", fmtCount(bus.memoryWrites)});
    summary.addRow({"swap-outs", fmtCount(cache.swapOuts)});
    summary.addRow({"purges", fmtCount(cache.purges)});
    summary.addRow({"DW no-fetch", fmtCount(cache.dwAllocNoFetch)});
    summary.addRow({"lock rejects", fmtCount(replay.lockRejects())});
    summary.print(std::cout);

    Table patterns("\nbus cycles by transaction pattern");
    patterns.setHeader({"pattern", "transactions", "cycles"});
    for (int p = 0; p < kNumBusPatterns; ++p) {
        if (bus.transByPattern[p] == 0)
            continue;
        patterns.addRow({busPatternName(static_cast<BusPattern>(p)),
                         fmtCount(bus.transByPattern[p]),
                         fmtCount(bus.cyclesByPattern[p])});
    }
    patterns.print(std::cout);
    return 0;
}
