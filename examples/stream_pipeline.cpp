/**
 * @file
 * Stream AND-parallelism example: the prime sieve as a growing pipeline
 * of filter processes, run with and without the optimized cache
 * commands to show where DW / ER / RP / RI pay off.
 *
 *   $ ./stream_pipeline [--limit N] [--pes P]
 */

#include <cstdio>
#include <iostream>

#include "common/options.h"
#include "common/strutil.h"
#include "common/table.h"
#include "kl1/compiler.h"
#include "kl1/emulator.h"
#include "kl1/parser.h"

namespace {

const char* kSieve = R"(
    % primes(N, Ps): the primes up to N, by a pipeline of filters.
    % Each prime found appends one more filter process to the pipeline;
    % the generator streams candidates through all of them.
    primes(N, Ps) :- true | gen(2, N, S), sift(S, Ps).

    gen(I, N, S) :- I > N  | S = [].
    gen(I, N, S) :- I =< N | S = [I|T], I1 := I + 1, gen(I1, N, T).

    sift([], Ps) :- true | Ps = [].
    sift([P|Xs], Ps) :- true | Ps = [P|Ps1], filter(P, Xs, Ys),
                        sift(Ys, Ps1).

    filter(_, [], Ys) :- true | Ys = [].
    filter(P, [X|Xs], Ys) :- X mod P =:= 0 | filter(P, Xs, Ys).
    filter(P, [X|Xs], Ys) :- X mod P =\= 0 | Ys = [X|Ys1],
                             filter(P, Xs, Ys1).

    count([], N, C) :- true | C = N.
    count([_|Xs], N, C) :- true | N1 := N + 1, count(Xs, N1, C).

    main(N, C) :- true | primes(N, Ps), count(Ps, 0, C).
)";

} // namespace

int
main(int argc, char** argv)
{
    using namespace pim;
    using namespace pim::kl1;

    const Options opts = Options::parse(argc, argv);
    const std::int64_t limit = opts.getInt("limit", 400);
    const std::uint32_t pes =
        static_cast<std::uint32_t>(opts.getInt("pes", 4));

    std::printf("prime sieve up to %lld on %u PEs\n\n",
                static_cast<long long>(limit), pes);

    Table table("optimized commands: on vs off");
    table.setHeader({"metric", "All opts", "None"});

    RunStats stats[2];
    BusStats bus[2];
    std::string answer[2];
    std::uint64_t suspensions[2];
    for (int which = 0; which < 2; ++which) {
        Kl1Config config;
        config.numPes = pes;
        config.policy =
            which == 0 ? OptPolicy::all() : OptPolicy::none();
        Module module = compileProgram(parseProgram(kSieve));
        Emulator emu(std::move(module), config);
        stats[which] = emu.run("main(" + std::to_string(limit) +
                               ", C).");
        bus[which] = emu.system().bus().stats();
        suspensions[which] = stats[which].suspensions;
        for (const auto& [name, value] : emu.queryBindings()) {
            if (name == "C")
                answer[which] = value;
        }
    }

    table.addRow({"primes found", answer[0], answer[1]});
    table.addRow({"reductions", fmtCount(stats[0].reductions),
                  fmtCount(stats[1].reductions)});
    table.addRow({"suspensions", fmtCount(suspensions[0]),
                  fmtCount(suspensions[1])});
    table.addRow({"bus cycles", fmtCount(bus[0].totalCycles),
                  fmtCount(bus[1].totalCycles)});
    table.addRow({"memory writes", fmtCount(bus[0].memoryWrites),
                  fmtCount(bus[1].memoryWrites)});
    table.addRow({"makespan", fmtCount(stats[0].makespan),
                  fmtCount(stats[1].makespan)});
    table.print(std::cout);

    std::printf("\nThe pipeline suspends whenever a filter outruns its"
                "\nupstream producer; the answers agree, only the traffic"
                "\ndiffers (%.0f%% of the unoptimized bus cycles).\n",
                100.0 * static_cast<double>(bus[0].totalCycles) /
                    static_cast<double>(bus[1].totalCycles));
    return 0;
}
