#!/usr/bin/env bash
# Build-and-test matrix (docs/TESTING.md): a Release leg, the two
# sanitizer legs, and a coverage leg. Each configuration builds into its
# own build-<name> directory so legs never contaminate each other.
#
#   scripts/ci.sh             # full matrix
#   scripts/ci.sh release     # one leg: release | asan | tsan | coverage
#   CTEST_ARGS="-L conform" scripts/ci.sh asan   # restrict the ctest run
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
CTEST_ARGS=${CTEST_ARGS:-}

run_leg() {
    local name=$1
    shift
    local dir="build-${name}"
    echo "=== leg: ${name} (${dir}) ==="
    cmake -B "${dir}" -S . "$@"
    cmake --build "${dir}" -j "${JOBS}"
    # ${CTEST_ARGS} intentionally unquoted: it is a list of extra flags.
    # shellcheck disable=SC2086
    (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" ${CTEST_ARGS})
}

# Snoop-filter throughput smoke (docs/PERFORMANCE.md): checks the
# filter-on/off exactness invariants and the BENCH_perf.json schema.
# Ratios are not asserted — CI wall-clock is noise. --par-jobs=2 adds
# the sequential-vs-parallel core measurement (its determinism
# cross-check fails the smoke on any observable mismatch) and lands
# the par.p<N>.* metrics in the report gate's ledger record, where
# local_frac and epochs gate exactly.
perf_smoke() {
    local dir="build-release"
    echo "=== perf smoke (${dir}) ==="
    "${dir}/bench/pim_perf" --smoke --par-jobs=2 \
        --json="${dir}/BENCH_perf.json"
    "${dir}/bench/json_check" --schema=perf \
        --require=rows.7.local_frac --require=rows.7.epochs \
        "${dir}/BENCH_perf.json"
}

# Parallel discrete-event core gate (docs/ARCHITECTURE.md "Threading
# model"): a deeper System-level jobs-invariance fuzz than the ctest
# `par` label runs, plus stress-harness bit-identity across
# --par-jobs on a lock/optimized-command mix. Wall-clock speedup is
# never asserted here — CI machines vary; the perf smoke's exact
# observables and the ledger's local_frac/epochs metrics carry the
# regression signal instead.
par_smoke() {
    local dir="build-release"
    echo "=== par smoke (${dir}) ==="
    "${dir}/bench/pim_conform" --par-fuzz --seed=11 --traces=40
    "${dir}/bench/pim_stress" --seed=5 --steps=20000 --lock-pct=25 \
        --opt-pct=20 > "${dir}/stress_par_seq.txt"
    "${dir}/bench/pim_stress" --seed=5 --steps=20000 --lock-pct=25 \
        --opt-pct=20 --par-jobs=4 > "${dir}/stress_par_par.txt"
    diff -u "${dir}/stress_par_seq.txt" "${dir}/stress_par_par.txt"
}

# Clustered-topology gate (docs/ARCHITECTURE.md): a deeper clustered
# conformance fuzz than the ctest `cluster` label runs, plus the
# 128-PE clustered perf smoke with its JSON schema check. Exercises
# the inter-cluster directory, hop accounting and the exactness
# invariants at a scale the unit tests keep short.
cluster_smoke() {
    local dir="build-release"
    echo "=== cluster smoke (${dir}) ==="
    "${dir}/bench/pim_conform" --fuzz --pes=8 --blocks=2 --sets=2 \
        --seed=11 --traces=40 --len=200 --cluster-size=2
    "${dir}/bench/pim_perf" --smoke --pes=128 --cluster-size=16 \
        --hop-cycles=2 --json="${dir}/BENCH_perf_clustered.json"
    "${dir}/bench/json_check" --schema=perf \
        --require=rows.0.inter_cluster_cycles \
        "${dir}/BENCH_perf_clustered.json"
}

# Protocol & replacement-policy zoo gate (docs/ARCHITECTURE.md
# "Protocol matrix"): a short differential fuzz of every non-default
# coherence protocol, the fig_zoo table byte-compared against its
# golden (pinning the PIM baseline column), and the --json document
# validated against the `zoo` schema.
zoo_smoke() {
    local dir="build-release"
    echo "=== zoo smoke (${dir}) ==="
    local proto
    for proto in msi mesi moesi dragon; do
        "${dir}/bench/pim_conform" --fuzz --protocol="${proto}" \
            --pes=3 --blocks=2 --sets=2 --seed=11 --traces=10 --len=100
    done
    "${dir}/bench/fig_zoo" --scale 1 --pes 2 \
        --json="${dir}/BENCH_fig_zoo.json" > "${dir}/fig_zoo.txt"
    diff -u tests/golden/fig_zoo.txt "${dir}/fig_zoo.txt"
    "${dir}/bench/json_check" --schema=zoo "${dir}/BENCH_fig_zoo.json"
}

# Short chaos soak campaign (docs/ROBUSTNESS.md): the smoke fault-plan
# x seed grid must end with zero escaped injections, and CAMPAIGN.json
# must satisfy the campaign schema.
soak_smoke() {
    local dir="build-release"
    echo "=== soak smoke (${dir}) ==="
    "${dir}/bench/pim_soak" --smoke --out="${dir}/soak"
    "${dir}/bench/json_check" --schema=campaign "${dir}/soak/CAMPAIGN.json"
}

# Perf regression ledger (docs/OBSERVABILITY.md): feed the perf smoke
# and a sweep smoke through pim_report against the repo-root
# BENCH_HISTORY.jsonl. The first CI run seeds the baseline; later runs
# gate against the previous record (exit 3 = regression, fails the leg).
# The run's attribution document is schema-checked alongside.
report_gate() {
    local dir="build-release"
    echo "=== report gate (${dir}) ==="
    "${dir}/bench/pim_sweep" --spec=smoke --jobs=2 --out="${dir}/sweep"
    "${dir}/bench/pim_stress" --seed=1 --steps=50000 --lock-pct=20 \
        --attribution-out="${dir}/ATTRIBUTION.json"
    "${dir}/bench/json_check" --schema=attribution "${dir}/ATTRIBUTION.json"
    "${dir}/bench/pim_report" \
        "${dir}/BENCH_perf.json" \
        "${dir}/sweep/SWEEP.json" \
        "${dir}/sweep/SWEEP.perf.json" \
        "${dir}/ATTRIBUTION.json" \
        --history=BENCH_HISTORY.jsonl --label=ci \
        --out="${dir}/TREND.md"
    "${dir}/bench/json_check" --schema=history BENCH_HISTORY.jsonl
}

coverage_report() {
    local dir="build-coverage"
    if command -v gcovr >/dev/null 2>&1; then
        gcovr --root . --filter src/ "${dir}" \
              --print-summary -o "${dir}/coverage.txt"
        echo "coverage report: ${dir}/coverage.txt"
    else
        echo "gcovr not found; raw .gcda files are under ${dir}/"
    fi
}

legs=("$@")
if [ ${#legs[@]} -eq 0 ]; then
    legs=(release asan tsan coverage)
fi

# Documentation link check runs before any build: stale references in
# README.md or docs/*.md fail CI immediately (scripts/check_docs.sh).
scripts/check_docs.sh

for leg in "${legs[@]}"; do
    case "${leg}" in
      release)
        run_leg release -DCMAKE_BUILD_TYPE=Release
        perf_smoke
        par_smoke
        cluster_smoke
        zoo_smoke
        soak_smoke
        report_gate
        ;;
      asan)
        run_leg asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPIM_SANITIZE=ON
        ;;
      tsan)
        run_leg tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPIM_SANITIZE=thread
        # The parallel core is the TSan-critical surface: re-run the
        # `par` label explicitly so a CTEST_ARGS restriction can never
        # skip it on this leg.
        (cd build-tsan && ctest --output-on-failure -L par)
        ;;
      coverage)
        run_leg coverage -DCMAKE_BUILD_TYPE=Debug -DPIM_COVERAGE=ON
        coverage_report
        ;;
      *)
        echo "ci.sh: unknown leg '${leg}'" \
             "(expected release, asan, tsan or coverage)" >&2
        exit 2
        ;;
    esac
done
echo "=== all legs passed ==="
