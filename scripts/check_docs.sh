#!/usr/bin/env bash
# Documentation link checker (docs/TESTING.md): every relative markdown
# link and every `src/...` / `bench/...` / `scripts/...` / `tests/...`
# path mentioned in README.md and docs/*.md must exist in the tree, so
# the docs cannot silently rot as files move.
#
#   scripts/check_docs.sh         # check README.md and docs/*.md
#
# Exits non-zero listing every stale reference. Absolute URLs
# (http/https) and intra-page #anchors are ignored.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
complain() {
    echo "check_docs: $1: stale reference: $2" >&2
    fail=1
}

check_file() {
    local doc=$1
    local dir
    dir=$(dirname "${doc}")

    # Markdown links: [text](target). Skip URLs and pure anchors;
    # strip any #anchor suffix before testing existence.
    while IFS= read -r target; do
        case "${target}" in
          http://*|https://*|mailto:*|\#*) continue ;;
        esac
        local path="${target%%#*}"
        [ -z "${path}" ] && continue
        if [ ! -e "${dir}/${path}" ] && [ ! -e "${path}" ]; then
            complain "${doc}" "link (${target})"
        fi
    done < <(grep -oE '\]\([^)]+\)' "${doc}" | sed -E 's/^\]\(//; s/\)$//')

    # Bare tree paths: src/..., bench/..., scripts/..., tests/...
    # mentioned in prose or code spans must name real files/dirs. A tool
    # mentioned by binary name (bench/pim_perf) resolves through its
    # source file (bench/pim_perf.cc). Wildcard mentions (src/*.cc) and
    # build-directory invocations (build/bench/...) are ignored.
    while IFS= read -r path; do
        case "${path}" in
          *\**) continue ;;
        esac
        if grep -qE "build[A-Za-z0-9_-]*/${path}" "${doc}"; then
            continue
        fi
        if [ ! -e "${path}" ] && [ ! -e "${path}.cc" ] \
               && [ ! -e "${path}.h" ]; then
            complain "${doc}" "path ${path}"
        fi
    done < <(grep -oE '\b(src|bench|scripts|tests)/[A-Za-z0-9_./-]+' \
                  "${doc}" | sed -E 's/[.,;:]+$//' | sort -u)
}

for doc in README.md docs/*.md; do
    check_file "${doc}"
done

if [ "${fail}" -ne 0 ]; then
    echo "check_docs: FAILED" >&2
    exit 1
fi
echo "check_docs: all references in README.md and docs/*.md resolve"
