# Empty compiler generated dependencies file for kl1run.
# This may be replaced when dependencies are built.
