file(REMOVE_RECURSE
  "CMakeFiles/kl1run.dir/kl1run.cpp.o"
  "CMakeFiles/kl1run.dir/kl1run.cpp.o.d"
  "kl1run"
  "kl1run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl1run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
