# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(kl1run_nrev "/root/repo/build/examples/kl1run" "/root/repo/examples/programs/nrev.fghc" "main(R)." "--pes" "4")
set_tests_properties(kl1run_nrev PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(kl1run_primes "/root/repo/build/examples/kl1run" "/root/repo/examples/programs/primes.fghc" "main(R)." "--pes" "4")
set_tests_properties(kl1run_primes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(kl1run_hanoi "/root/repo/build/examples/kl1run" "/root/repo/examples/programs/hanoi.fghc" "main(R)." "--pes" "4")
set_tests_properties(kl1run_hanoi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(kl1run_life "/root/repo/build/examples/kl1run" "/root/repo/examples/programs/life.fghc" "main(R)." "--pes" "4")
set_tests_properties(kl1run_life PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(kl1run_disasm "/root/repo/build/examples/kl1run" "/root/repo/examples/programs/nrev.fghc" "--disasm")
set_tests_properties(kl1run_disasm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(kl1run_report "/root/repo/build/examples/kl1run" "/root/repo/examples/programs/primes.fghc" "main(R)." "--report" "--policy" "none")
set_tests_properties(kl1run_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(kl1run_gc "/root/repo/build/examples/kl1run" "/root/repo/examples/programs/hanoi.fghc" "main(R)." "--gc" "--heap" "16384")
set_tests_properties(kl1run_gc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stream_pipeline "/root/repo/build/examples/stream_pipeline")
set_tests_properties(example_stream_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lock_contention "/root/repo/build/examples/lock_contention")
set_tests_properties(example_lock_contention PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_trace "/root/repo/build/examples/protocol_trace")
set_tests_properties(example_protocol_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_explorer "/root/repo/build/examples/cache_explorer" "--pattern" "orparallel" "--pes" "4")
set_tests_properties(example_cache_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
