# Empty dependencies file for ablation_bus_width.
# This may be replaced when dependencies are built.
