file(REMOVE_RECURSE
  "CMakeFiles/ablation_bus_width.dir/ablation_bus_width.cc.o"
  "CMakeFiles/ablation_bus_width.dir/ablation_bus_width.cc.o.d"
  "ablation_bus_width"
  "ablation_bus_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bus_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
