file(REMOVE_RECURSE
  "CMakeFiles/ablation_associativity.dir/ablation_associativity.cc.o"
  "CMakeFiles/ablation_associativity.dir/ablation_associativity.cc.o.d"
  "ablation_associativity"
  "ablation_associativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
