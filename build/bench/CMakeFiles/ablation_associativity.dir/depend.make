# Empty dependencies file for ablation_associativity.
# This may be replaced when dependencies are built.
