file(REMOVE_RECURSE
  "CMakeFiles/microbench_cache.dir/microbench_cache.cc.o"
  "CMakeFiles/microbench_cache.dir/microbench_cache.cc.o.d"
  "microbench_cache"
  "microbench_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
