# Empty compiler generated dependencies file for microbench_cache.
# This may be replaced when dependencies are built.
