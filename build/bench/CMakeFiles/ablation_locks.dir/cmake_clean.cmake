file(REMOVE_RECURSE
  "CMakeFiles/ablation_locks.dir/ablation_locks.cc.o"
  "CMakeFiles/ablation_locks.dir/ablation_locks.cc.o.d"
  "ablation_locks"
  "ablation_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
