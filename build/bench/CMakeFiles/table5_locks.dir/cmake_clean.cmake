file(REMOVE_RECURSE
  "CMakeFiles/table5_locks.dir/table5_locks.cc.o"
  "CMakeFiles/table5_locks.dir/table5_locks.cc.o.d"
  "table5_locks"
  "table5_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
