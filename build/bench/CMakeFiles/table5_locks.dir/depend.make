# Empty dependencies file for table5_locks.
# This may be replaced when dependencies are built.
