file(REMOVE_RECURSE
  "CMakeFiles/ablation_sm_state.dir/ablation_sm_state.cc.o"
  "CMakeFiles/ablation_sm_state.dir/ablation_sm_state.cc.o.d"
  "ablation_sm_state"
  "ablation_sm_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sm_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
