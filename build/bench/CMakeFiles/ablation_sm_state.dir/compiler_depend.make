# Empty compiler generated dependencies file for ablation_sm_state.
# This may be replaced when dependencies are built.
