# Empty dependencies file for orparallel_traffic.
# This may be replaced when dependencies are built.
