file(REMOVE_RECURSE
  "CMakeFiles/orparallel_traffic.dir/orparallel_traffic.cc.o"
  "CMakeFiles/orparallel_traffic.dir/orparallel_traffic.cc.o.d"
  "orparallel_traffic"
  "orparallel_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orparallel_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
