file(REMOVE_RECURSE
  "CMakeFiles/table3_operations.dir/table3_operations.cc.o"
  "CMakeFiles/table3_operations.dir/table3_operations.cc.o.d"
  "table3_operations"
  "table3_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
