# Empty dependencies file for table3_operations.
# This may be replaced when dependencies are built.
