# Empty compiler generated dependencies file for table2_areas.
# This may be replaced when dependencies are built.
