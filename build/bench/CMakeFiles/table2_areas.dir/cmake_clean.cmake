file(REMOVE_RECURSE
  "CMakeFiles/table2_areas.dir/table2_areas.cc.o"
  "CMakeFiles/table2_areas.dir/table2_areas.cc.o.d"
  "table2_areas"
  "table2_areas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_areas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
