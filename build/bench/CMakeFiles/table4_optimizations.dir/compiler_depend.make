# Empty compiler generated dependencies file for table4_optimizations.
# This may be replaced when dependencies are built.
