
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_optimizations.cc" "bench/CMakeFiles/table4_optimizations.dir/table4_optimizations.cc.o" "gcc" "bench/CMakeFiles/table4_optimizations.dir/table4_optimizations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_kl1/CMakeFiles/pim_bench_kl1.dir/DependInfo.cmake"
  "/root/repo/build/src/kl1/CMakeFiles/pim_kl1.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pim_cache_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/pim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
