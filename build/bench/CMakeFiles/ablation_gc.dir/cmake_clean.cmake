file(REMOVE_RECURSE
  "CMakeFiles/ablation_gc.dir/ablation_gc.cc.o"
  "CMakeFiles/ablation_gc.dir/ablation_gc.cc.o.d"
  "ablation_gc"
  "ablation_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
