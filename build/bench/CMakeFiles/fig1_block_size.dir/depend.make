# Empty dependencies file for fig1_block_size.
# This may be replaced when dependencies are built.
