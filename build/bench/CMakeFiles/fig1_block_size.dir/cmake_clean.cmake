file(REMOVE_RECURSE
  "CMakeFiles/fig1_block_size.dir/fig1_block_size.cc.o"
  "CMakeFiles/fig1_block_size.dir/fig1_block_size.cc.o.d"
  "fig1_block_size"
  "fig1_block_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
