file(REMOVE_RECURSE
  "CMakeFiles/fig2_capacity.dir/fig2_capacity.cc.o"
  "CMakeFiles/fig2_capacity.dir/fig2_capacity.cc.o.d"
  "fig2_capacity"
  "fig2_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
