# Empty dependencies file for fig2_capacity.
# This may be replaced when dependencies are built.
