# Empty dependencies file for fig3_pes.
# This may be replaced when dependencies are built.
