file(REMOVE_RECURSE
  "CMakeFiles/fig3_pes.dir/fig3_pes.cc.o"
  "CMakeFiles/fig3_pes.dir/fig3_pes.cc.o.d"
  "fig3_pes"
  "fig3_pes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
