# Empty compiler generated dependencies file for ablation_mrb.
# This may be replaced when dependencies are built.
