file(REMOVE_RECURSE
  "CMakeFiles/ablation_mrb.dir/ablation_mrb.cc.o"
  "CMakeFiles/ablation_mrb.dir/ablation_mrb.cc.o.d"
  "ablation_mrb"
  "ablation_mrb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mrb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
