file(REMOVE_RECURSE
  "libpim_bench_kl1.a"
)
