# Empty dependencies file for pim_bench_kl1.
# This may be replaced when dependencies are built.
