file(REMOVE_RECURSE
  "CMakeFiles/pim_bench_kl1.dir/programs.cc.o"
  "CMakeFiles/pim_bench_kl1.dir/programs.cc.o.d"
  "CMakeFiles/pim_bench_kl1.dir/workload.cc.o"
  "CMakeFiles/pim_bench_kl1.dir/workload.cc.o.d"
  "libpim_bench_kl1.a"
  "libpim_bench_kl1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_bench_kl1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
