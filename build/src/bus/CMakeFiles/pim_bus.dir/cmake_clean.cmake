file(REMOVE_RECURSE
  "CMakeFiles/pim_bus.dir/bus.cc.o"
  "CMakeFiles/pim_bus.dir/bus.cc.o.d"
  "libpim_bus.a"
  "libpim_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
