file(REMOVE_RECURSE
  "libpim_bus.a"
)
