# Empty dependencies file for pim_bus.
# This may be replaced when dependencies are built.
