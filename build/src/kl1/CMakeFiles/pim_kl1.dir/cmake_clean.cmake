file(REMOVE_RECURSE
  "CMakeFiles/pim_kl1.dir/compiler.cc.o"
  "CMakeFiles/pim_kl1.dir/compiler.cc.o.d"
  "CMakeFiles/pim_kl1.dir/emulator.cc.o"
  "CMakeFiles/pim_kl1.dir/emulator.cc.o.d"
  "CMakeFiles/pim_kl1.dir/gc.cc.o"
  "CMakeFiles/pim_kl1.dir/gc.cc.o.d"
  "CMakeFiles/pim_kl1.dir/lexer.cc.o"
  "CMakeFiles/pim_kl1.dir/lexer.cc.o.d"
  "CMakeFiles/pim_kl1.dir/machine.cc.o"
  "CMakeFiles/pim_kl1.dir/machine.cc.o.d"
  "CMakeFiles/pim_kl1.dir/module.cc.o"
  "CMakeFiles/pim_kl1.dir/module.cc.o.d"
  "CMakeFiles/pim_kl1.dir/parser.cc.o"
  "CMakeFiles/pim_kl1.dir/parser.cc.o.d"
  "CMakeFiles/pim_kl1.dir/symtab.cc.o"
  "CMakeFiles/pim_kl1.dir/symtab.cc.o.d"
  "CMakeFiles/pim_kl1.dir/term.cc.o"
  "CMakeFiles/pim_kl1.dir/term.cc.o.d"
  "libpim_kl1.a"
  "libpim_kl1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_kl1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
