# Empty dependencies file for pim_kl1.
# This may be replaced when dependencies are built.
