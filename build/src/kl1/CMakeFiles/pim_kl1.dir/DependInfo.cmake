
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kl1/compiler.cc" "src/kl1/CMakeFiles/pim_kl1.dir/compiler.cc.o" "gcc" "src/kl1/CMakeFiles/pim_kl1.dir/compiler.cc.o.d"
  "/root/repo/src/kl1/emulator.cc" "src/kl1/CMakeFiles/pim_kl1.dir/emulator.cc.o" "gcc" "src/kl1/CMakeFiles/pim_kl1.dir/emulator.cc.o.d"
  "/root/repo/src/kl1/gc.cc" "src/kl1/CMakeFiles/pim_kl1.dir/gc.cc.o" "gcc" "src/kl1/CMakeFiles/pim_kl1.dir/gc.cc.o.d"
  "/root/repo/src/kl1/lexer.cc" "src/kl1/CMakeFiles/pim_kl1.dir/lexer.cc.o" "gcc" "src/kl1/CMakeFiles/pim_kl1.dir/lexer.cc.o.d"
  "/root/repo/src/kl1/machine.cc" "src/kl1/CMakeFiles/pim_kl1.dir/machine.cc.o" "gcc" "src/kl1/CMakeFiles/pim_kl1.dir/machine.cc.o.d"
  "/root/repo/src/kl1/module.cc" "src/kl1/CMakeFiles/pim_kl1.dir/module.cc.o" "gcc" "src/kl1/CMakeFiles/pim_kl1.dir/module.cc.o.d"
  "/root/repo/src/kl1/parser.cc" "src/kl1/CMakeFiles/pim_kl1.dir/parser.cc.o" "gcc" "src/kl1/CMakeFiles/pim_kl1.dir/parser.cc.o.d"
  "/root/repo/src/kl1/symtab.cc" "src/kl1/CMakeFiles/pim_kl1.dir/symtab.cc.o" "gcc" "src/kl1/CMakeFiles/pim_kl1.dir/symtab.cc.o.d"
  "/root/repo/src/kl1/term.cc" "src/kl1/CMakeFiles/pim_kl1.dir/term.cc.o" "gcc" "src/kl1/CMakeFiles/pim_kl1.dir/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pim_cache_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/pim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
