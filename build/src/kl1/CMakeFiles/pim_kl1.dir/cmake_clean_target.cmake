file(REMOVE_RECURSE
  "libpim_kl1.a"
)
