file(REMOVE_RECURSE
  "CMakeFiles/pim_mem.dir/free_list.cc.o"
  "CMakeFiles/pim_mem.dir/free_list.cc.o.d"
  "CMakeFiles/pim_mem.dir/layout.cc.o"
  "CMakeFiles/pim_mem.dir/layout.cc.o.d"
  "CMakeFiles/pim_mem.dir/paged_store.cc.o"
  "CMakeFiles/pim_mem.dir/paged_store.cc.o.d"
  "libpim_mem.a"
  "libpim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
