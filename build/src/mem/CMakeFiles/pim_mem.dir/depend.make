# Empty dependencies file for pim_mem.
# This may be replaced when dependencies are built.
