file(REMOVE_RECURSE
  "libpim_mem.a"
)
