file(REMOVE_RECURSE
  "CMakeFiles/pim_trace.dir/ref_stats.cc.o"
  "CMakeFiles/pim_trace.dir/ref_stats.cc.o.d"
  "CMakeFiles/pim_trace.dir/synth.cc.o"
  "CMakeFiles/pim_trace.dir/synth.cc.o.d"
  "CMakeFiles/pim_trace.dir/trace_file.cc.o"
  "CMakeFiles/pim_trace.dir/trace_file.cc.o.d"
  "libpim_trace.a"
  "libpim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
