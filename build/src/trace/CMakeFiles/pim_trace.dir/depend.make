# Empty dependencies file for pim_trace.
# This may be replaced when dependencies are built.
