
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/ref_stats.cc" "src/trace/CMakeFiles/pim_trace.dir/ref_stats.cc.o" "gcc" "src/trace/CMakeFiles/pim_trace.dir/ref_stats.cc.o.d"
  "/root/repo/src/trace/synth.cc" "src/trace/CMakeFiles/pim_trace.dir/synth.cc.o" "gcc" "src/trace/CMakeFiles/pim_trace.dir/synth.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/trace/CMakeFiles/pim_trace.dir/trace_file.cc.o" "gcc" "src/trace/CMakeFiles/pim_trace.dir/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/pim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
