file(REMOVE_RECURSE
  "libpim_cache_lib.a"
)
