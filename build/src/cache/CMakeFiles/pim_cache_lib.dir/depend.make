# Empty dependencies file for pim_cache_lib.
# This may be replaced when dependencies are built.
