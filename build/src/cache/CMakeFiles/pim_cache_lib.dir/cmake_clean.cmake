file(REMOVE_RECURSE
  "CMakeFiles/pim_cache_lib.dir/cache_stats.cc.o"
  "CMakeFiles/pim_cache_lib.dir/cache_stats.cc.o.d"
  "CMakeFiles/pim_cache_lib.dir/lock_directory.cc.o"
  "CMakeFiles/pim_cache_lib.dir/lock_directory.cc.o.d"
  "CMakeFiles/pim_cache_lib.dir/pim_cache.cc.o"
  "CMakeFiles/pim_cache_lib.dir/pim_cache.cc.o.d"
  "libpim_cache_lib.a"
  "libpim_cache_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_cache_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
