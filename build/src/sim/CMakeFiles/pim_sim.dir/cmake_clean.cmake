file(REMOVE_RECURSE
  "CMakeFiles/pim_sim.dir/report.cc.o"
  "CMakeFiles/pim_sim.dir/report.cc.o.d"
  "CMakeFiles/pim_sim.dir/system.cc.o"
  "CMakeFiles/pim_sim.dir/system.cc.o.d"
  "CMakeFiles/pim_sim.dir/trace_replay.cc.o"
  "CMakeFiles/pim_sim.dir/trace_replay.cc.o.d"
  "libpim_sim.a"
  "libpim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
