file(REMOVE_RECURSE
  "CMakeFiles/pim_common.dir/log.cc.o"
  "CMakeFiles/pim_common.dir/log.cc.o.d"
  "CMakeFiles/pim_common.dir/options.cc.o"
  "CMakeFiles/pim_common.dir/options.cc.o.d"
  "CMakeFiles/pim_common.dir/strutil.cc.o"
  "CMakeFiles/pim_common.dir/strutil.cc.o.d"
  "CMakeFiles/pim_common.dir/table.cc.o"
  "CMakeFiles/pim_common.dir/table.cc.o.d"
  "libpim_common.a"
  "libpim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
