# Empty dependencies file for cache_protocol_test.
# This may be replaced when dependencies are built.
