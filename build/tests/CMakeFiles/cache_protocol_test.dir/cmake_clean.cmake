file(REMOVE_RECURSE
  "CMakeFiles/cache_protocol_test.dir/cache_protocol_test.cc.o"
  "CMakeFiles/cache_protocol_test.dir/cache_protocol_test.cc.o.d"
  "cache_protocol_test"
  "cache_protocol_test.pdb"
  "cache_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
