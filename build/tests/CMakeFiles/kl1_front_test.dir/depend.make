# Empty dependencies file for kl1_front_test.
# This may be replaced when dependencies are built.
