file(REMOVE_RECURSE
  "CMakeFiles/cache_transition_test.dir/cache_transition_test.cc.o"
  "CMakeFiles/cache_transition_test.dir/cache_transition_test.cc.o.d"
  "cache_transition_test"
  "cache_transition_test.pdb"
  "cache_transition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_transition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
