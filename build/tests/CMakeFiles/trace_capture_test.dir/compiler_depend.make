# Empty compiler generated dependencies file for trace_capture_test.
# This may be replaced when dependencies are built.
