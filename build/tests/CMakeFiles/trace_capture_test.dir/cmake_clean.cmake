file(REMOVE_RECURSE
  "CMakeFiles/trace_capture_test.dir/trace_capture_test.cc.o"
  "CMakeFiles/trace_capture_test.dir/trace_capture_test.cc.o.d"
  "trace_capture_test"
  "trace_capture_test.pdb"
  "trace_capture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_capture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
