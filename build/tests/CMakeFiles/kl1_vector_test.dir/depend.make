# Empty dependencies file for kl1_vector_test.
# This may be replaced when dependencies are built.
