# Empty dependencies file for cache_basic_test.
# This may be replaced when dependencies are built.
