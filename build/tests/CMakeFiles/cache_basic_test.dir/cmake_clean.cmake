file(REMOVE_RECURSE
  "CMakeFiles/cache_basic_test.dir/cache_basic_test.cc.o"
  "CMakeFiles/cache_basic_test.dir/cache_basic_test.cc.o.d"
  "cache_basic_test"
  "cache_basic_test.pdb"
  "cache_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
