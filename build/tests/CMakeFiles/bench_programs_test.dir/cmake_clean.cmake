file(REMOVE_RECURSE
  "CMakeFiles/bench_programs_test.dir/bench_programs_test.cc.o"
  "CMakeFiles/bench_programs_test.dir/bench_programs_test.cc.o.d"
  "bench_programs_test"
  "bench_programs_test.pdb"
  "bench_programs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
