# Empty dependencies file for kl1_parallel_test.
# This may be replaced when dependencies are built.
