# Empty dependencies file for kl1_gc_test.
# This may be replaced when dependencies are built.
