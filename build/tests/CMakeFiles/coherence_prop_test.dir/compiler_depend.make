# Empty compiler generated dependencies file for coherence_prop_test.
# This may be replaced when dependencies are built.
