file(REMOVE_RECURSE
  "CMakeFiles/coherence_prop_test.dir/coherence_prop_test.cc.o"
  "CMakeFiles/coherence_prop_test.dir/coherence_prop_test.cc.o.d"
  "coherence_prop_test"
  "coherence_prop_test.pdb"
  "coherence_prop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_prop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
