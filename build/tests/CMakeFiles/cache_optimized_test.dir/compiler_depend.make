# Empty compiler generated dependencies file for cache_optimized_test.
# This may be replaced when dependencies are built.
