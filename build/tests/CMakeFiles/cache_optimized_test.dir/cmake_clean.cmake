file(REMOVE_RECURSE
  "CMakeFiles/cache_optimized_test.dir/cache_optimized_test.cc.o"
  "CMakeFiles/cache_optimized_test.dir/cache_optimized_test.cc.o.d"
  "cache_optimized_test"
  "cache_optimized_test.pdb"
  "cache_optimized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_optimized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
