# Empty compiler generated dependencies file for kl1_programs_test.
# This may be replaced when dependencies are built.
