# Empty dependencies file for kl1_exec_test.
# This may be replaced when dependencies are built.
