file(REMOVE_RECURSE
  "CMakeFiles/kl1_exec_test.dir/kl1_exec_test.cc.o"
  "CMakeFiles/kl1_exec_test.dir/kl1_exec_test.cc.o.d"
  "kl1_exec_test"
  "kl1_exec_test.pdb"
  "kl1_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl1_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
