/**
 * @file
 * Seed-replay stress harness: randomized multi-PE traffic under an
 * optional fault plan, with the coherence auditor and lock watchdog
 * attached (docs/ROBUSTNESS.md).
 *
 * Exit codes: 0 = run finished with no fault detected; 2 = a fault was
 * detected (auditor or watchdog); 1 = bad usage. With --expect-fault the
 * meaning of 0 and 2 is inverted, so CI can assert both directions.
 *
 * On a detected fault the harness prints a one-line replay command that
 * reproduces the failure deterministically, and (with --trace-out) dumps
 * the completed-reference trace in PIMTRACE format.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/options.h"
#include "common/sim_fault.h"
#include "sim/stress.h"

using namespace pim;

namespace {

void
usage()
{
    std::printf(
        "pim_stress: randomized coherence/lock stress with seed replay\n"
        "  --seed=N            RNG seed (default 1)\n"
        "  --pes=N             number of PEs (default 4)\n"
        "  --geometry=BxWxS    cache block words x ways x sets "
        "(default 4x2x64)\n"
        "  --steps=N           references to complete (default 20000)\n"
        "  --span=N            shared region size in words (default 4096)\n"
        "  --write-pct=N       write share of plain refs (default 30)\n"
        "  --lock-pct=N        lock-protocol share (default 10)\n"
        "  --opt-pct=N         DW/ER/RP producer-consumer share "
        "(default 15)\n"
        "  --plan=SPEC         fault plan, e.g. "
        "'corrupt_word:p=0.001,lost_ul:after=50'\n"
        "  --starvation-bound=N  watchdog starvation bound "
        "(default 100000)\n"
        "  --livelock-retries=N  watchdog livelock bound (default 1000)\n"
        "  --trace-out=PATH    dump completed refs on failure (PIMTRACE)\n"
        "  --timeline-out=PATH dump Chrome trace-event timeline (always;\n"
        "                      with --trace-out only, dumped on failure\n"
        "                      as <trace-out>.timeline.json)\n"
        "  --attribution-out=PATH  dump the miss/cycle attribution report\n"
        "                      as JSON (schema `attribution`, always;\n"
        "                      docs/OBSERVABILITY.md)\n"
        "  --no-audit          detach the coherence auditor\n"
        "  --no-snoop-filter   disable the exact bus-side snoop filter\n"
        "                      (identical outcomes; docs/PERFORMANCE.md)\n"
        "  --cluster-size=N    PEs per snooping-bus cluster (0 = single\n"
        "                      bus; docs/ARCHITECTURE.md)\n"
        "  --hop-cycles=N      one-way inter-cluster hop cost (default 4)\n"
        "  --timeout=SECS      wall-clock budget; exceeding it is a\n"
        "                      detected Timeout fault (not in replay\n"
        "                      lines: wall-clock, not simulation state)\n"
        "  --expect-fault      exit 0 iff a fault was detected\n"
        "  --seeds=N           batch: run seeds SEED..SEED+N-1 (default 1)\n"
        "  --jobs=N            batch worker threads (default: hardware);\n"
        "                      results are identical for any value\n"
        "  --par-jobs=N        parallel-core jobs for the drive loop; a\n"
        "                      stress run always degrades to the\n"
        "                      serialized-epoch mode, so results are\n"
        "                      bit-identical for any value and fault\n"
        "                      sites fire at epoch boundaries\n"
        "                      (docs/ROBUSTNESS.md)\n"
        "  --replay            marker flag printed in replay lines; a\n"
        "                      stress run is a pure function of its flags\n");
}

const char* const kKnownFlags[] = {
    "seed",       "pes",        "geometry",  "steps",
    "span",       "write-pct",  "lock-pct",  "opt-pct",
    "plan",       "trace-out",  "timeline-out", "attribution-out",
    "no-audit",   "expect-fault",
    "replay",     "help",       "starvation-bound", "livelock-retries",
    "seeds",      "jobs",       "no-snoop-filter", "timeout",
    "cluster-size", "hop-cycles", "par-jobs",
};

/**
 * A mistyped flag in a replay line would silently run with a default
 * and reproduce a *different* run, so unlike the shared bench parser
 * this tool rejects unknown options.
 */
bool
flagsAreKnown(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            continue;
        std::string name(argv[i] + 2);
        name = name.substr(0, name.find('='));
        bool known = false;
        for (const char* flag : kKnownFlags)
            known = known || name == flag;
        if (!known) {
            std::fprintf(stderr, "pim_stress: unknown option --%s\n",
                         name.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opts = Options::parse(argc, argv);
    if (opts.getBool("help")) {
        usage();
        return 0;
    }
    if (!flagsAreKnown(argc, argv)) {
        usage();
        return 1;
    }

    StressConfig config;
    StressResult result;
    std::uint32_t seeds = 1;
    unsigned jobs = 0;
    try {
        config.seed = static_cast<std::uint64_t>(opts.getInt("seed", 1));
        config.numPes =
            static_cast<std::uint32_t>(opts.getInt("pes", 4));
        config.setGeometry(opts.getString("geometry", "4x2x64"));
        config.steps =
            static_cast<std::uint64_t>(opts.getInt("steps", 20000));
        config.spanWords =
            static_cast<std::uint64_t>(opts.getInt("span", 4096));
        config.writePct =
            static_cast<std::uint32_t>(opts.getInt("write-pct", 30));
        config.lockPct =
            static_cast<std::uint32_t>(opts.getInt("lock-pct", 10));
        config.optPct =
            static_cast<std::uint32_t>(opts.getInt("opt-pct", 15));
        config.planSpec = opts.getString("plan", "");
        config.traceOut = opts.getString("trace-out", "");
        config.timelineOut = opts.getString("timeline-out", "");
        config.attributionOut = opts.getString("attribution-out", "");
        config.audit = !opts.getBool("no-audit");
        config.snoopFilter = !opts.getBool("no-snoop-filter");
        config.clusterSize =
            static_cast<std::uint32_t>(opts.getInt("cluster-size", 0));
        config.hopCycles =
            static_cast<std::uint32_t>(opts.getInt("hop-cycles", 4));
        config.timeoutSeconds = opts.getDouble("timeout", 0);
        config.parJobs =
            static_cast<std::uint32_t>(opts.getInt("par-jobs", 0));
        config.watchdog.starvationBound = static_cast<std::uint64_t>(
            opts.getInt("starvation-bound", 100000));
        config.watchdog.livelockRetries = static_cast<std::uint32_t>(
            opts.getInt("livelock-retries", 1000));
        seeds = static_cast<std::uint32_t>(opts.getInt("seeds", 1));
        jobs = static_cast<unsigned>(opts.getInt("jobs", 0));

        if (seeds > 1) {
            // Seed batch through the shared thread pool: per-seed results
            // are identical to running each seed alone (stress.h).
            const std::vector<StressResult> results =
                runStressBatch(config, seeds, jobs);
            std::uint32_t faults = 0;
            for (std::uint32_t i = 0; i < seeds; ++i) {
                const StressResult& r = results[i];
                if (r.failed) {
                    ++faults;
                    std::printf("seed %llu: FAULT (%s) after %llu refs: "
                                "%s\n  replay: %s\n",
                                static_cast<unsigned long long>(
                                    config.seed + i),
                                simFaultKindName(r.kind),
                                static_cast<unsigned long long>(
                                    r.completedRefs),
                                r.message.c_str(), r.replayLine.c_str());
                } else {
                    std::printf("seed %llu: OK, %llu refs, fingerprint "
                                "%016llx\n",
                                static_cast<unsigned long long>(
                                    config.seed + i),
                                static_cast<unsigned long long>(
                                    r.completedRefs),
                                static_cast<unsigned long long>(
                                    r.fingerprint));
                }
            }
            std::printf("batch: %u seeds, %u faults\n", seeds, faults);
            const bool expect_fault = opts.getBool("expect-fault");
            return (faults != 0) == expect_fault ? 0 : 2;
        }

        result = runStress(config);
    } catch (const SimFault& fault) {
        // Detected faults inside runStress are result rows, not throws;
        // anything escaping to here is a usage/config problem, reported
        // one-line structured with its family exit code.
        std::fprintf(stderr, "pim_stress: error: kind=%s exit=%d %s\n",
                     simFaultKindName(fault.kind()),
                     simFaultExitCode(fault.kind()), fault.what());
        return simFaultExitCode(fault.kind());
    }

    if (result.failed) {
        std::printf("FAULT (%s) after %llu completed references:\n  %s\n",
                    simFaultKindName(result.kind),
                    static_cast<unsigned long long>(result.completedRefs),
                    result.message.c_str());
        std::printf("replay: %s\n", result.replayLine.c_str());
        if (result.traceRecords != 0) {
            std::printf("trace: %llu records -> %s\n",
                        static_cast<unsigned long long>(result.traceRecords),
                        config.traceOut.c_str());
        }
    } else {
        std::printf("OK: %llu references, %llu audit checks, "
                    "fingerprint %016llx, makespan %llu cycles\n",
                    static_cast<unsigned long long>(result.completedRefs),
                    static_cast<unsigned long long>(result.auditChecks),
                    static_cast<unsigned long long>(result.fingerprint),
                    static_cast<unsigned long long>(result.makespan));
    }
    if (!result.timelinePath.empty()) {
        std::printf("timeline: %llu events -> %s\n",
                    static_cast<unsigned long long>(result.timelineEvents),
                    result.timelinePath.c_str());
    }
    if (!result.attributionPath.empty()) {
        std::printf("attribution: %llu classified misses -> %s\n",
                    static_cast<unsigned long long>(result.classifiedMisses),
                    result.attributionPath.c_str());
    }
    if (!result.injectorSummary.empty())
        std::printf("faults injected: %s\n", result.injectorSummary.c_str());

    const bool expect_fault = opts.getBool("expect-fault");
    if (result.failed == expect_fault)
        return 0;
    return 2;
}
