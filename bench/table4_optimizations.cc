/**
 * @file
 * Reproduces Table 4 of the paper: "Effect of Optimized Cache Commands
 * in Reducing Bus Traffic" — bus cycles relative to the unoptimized
 * cache for the Heap (DW), Goal (ER/RP/DW), Comm (RI) and All
 * configurations — plus the per-command detail of Section 4.6 (swap-in
 * avoided by DW, invalidations avoided by RI).
 */

#include <cctype>

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

struct PaperRow {
    const char* bench;
    double heap, goal, comm, all;
};

const PaperRow kPaper[] = {
    {"Tri", 0.62, 0.80, 0.83, 0.52},
    {"Semi", 0.65, 1.00, 0.99, 0.62},
    {"Puzzle", 0.55, 0.98, 0.98, 0.51},
    {"Pascal", 0.64, 0.94, 0.96, 0.60},
};

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Table 4: Effect of Optimized Cache Commands", ctx);
    BenchJson json(ctx, "table4_optimizations");

    const OptPolicy policies[] = {OptPolicy::none(), OptPolicy::heapOnly(),
                                  OptPolicy::goalOnly(),
                                  OptPolicy::commOnly(), OptPolicy::all()};

    Table table("measured: bus cycles relative to no optimization");
    table.setHeader({"benchmark", "None", "Heap", "Goal", "Comm", "All"});
    Table detail("measured detail (None -> All)");
    detail.setHeader({"benchmark", "mem fetches", "I cmds", "swap-outs",
                      "DW no-fetch", "purges"});

    for (const PaperRow& row : kPaper) {
        const BenchProgram& bench = benchmarkByName(row.bench);
        std::vector<std::string> cells = {row.bench};
        double base = 0;
        BenchResult none_result;
        BenchResult all_result;
        json.row();
        json.set("bench", row.bench);
        for (const OptPolicy& policy : policies) {
            const BenchResult r = runBenchmark(
                bench, ctx.scale, paperConfig(ctx.pes, policy));
            const double cycles =
                static_cast<double>(r.bus.totalCycles);
            if (policy.name() == "None") {
                base = cycles;
                none_result = r;
            }
            if (policy.name() == "All")
                all_result = r;
            cells.push_back(fmtFixed(base == 0 ? 0 : cycles / base, 2));
            std::string key = "measured_rel_" + policy.name();
            for (char& c : key)
                c = static_cast<char>(std::tolower(
                    static_cast<unsigned char>(c)));
            json.set(key, base == 0 ? 0.0 : cycles / base);
        }
        table.addRow(cells);
        json.set("paper_rel_heap", row.heap);
        json.set("paper_rel_goal", row.goal);
        json.set("paper_rel_comm", row.comm);
        json.set("paper_rel_all", row.all);

        auto ratio = [](std::uint64_t after, std::uint64_t before) {
            return std::string(fmtCount(before)) + " -> " +
                   fmtCount(after);
        };
        detail.addRow(
            {row.bench,
             ratio(all_result.bus.memoryReads, none_result.bus.memoryReads),
             ratio(all_result.bus.cmdCounts[static_cast<int>(BusCmd::I)],
                   none_result.bus.cmdCounts[static_cast<int>(BusCmd::I)]),
             ratio(all_result.cache.swapOuts, none_result.cache.swapOuts),
             fmtCount(all_result.cache.dwAllocNoFetch),
             fmtCount(all_result.cache.purges)});
    }
    json.write();
    table.print(std::cout);
    std::printf("\n");
    detail.print(std::cout);

    std::printf("\npaper Table 4:\n");
    Table paper("");
    paper.setHeader({"benchmark", "None", "Heap", "Goal", "Comm", "All"});
    for (const PaperRow& row : kPaper) {
        paper.addRow({row.bench, "1.00", fmtFixed(row.heap, 2),
                      fmtFixed(row.goal, 2), fmtFixed(row.comm, 2),
                      fmtFixed(row.all, 2)});
    }
    paper.print(std::cout);
    std::printf(
        "\nShape checks: DW ('Heap') contributes almost all of the"
        "\nsavings; 'Goal' and 'Comm' alone save little; 'All' lands"
        "\naround 0.5-0.65 of the unoptimized traffic (paper Section 5:"
        "\n40-50%% reduction, DW alone 35-45%%).\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "table4_optimizations", [&] { return pim::kl1::bench::run(argc, argv); });
}
