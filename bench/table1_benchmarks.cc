/**
 * @file
 * Reproduces Table 1 of the paper: "Short Summary of Benchmarks on Eight
 * PEs" — static source lines, execution time, relative speedup on the
 * full PE count, reductions, suspensions, KL1 instructions executed and
 * emulated memory references.
 *
 * The paper's "sec." column is host wall-clock of ICOT's emulator on a
 * Sequent Symmetry; we report simulated machine cycles instead (and the
 * speedup is simulated-cycle speedup vs a one-PE run of the same
 * program). Absolute counts differ because the workloads are
 * synthesized; see DESIGN.md.
 */

#include <cmath>

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

struct PaperRow {
    const char* bench;
    int lines;
    double su;
    double reductions;
    double suspensions;
    double instr;
    double refs;
};

// Paper Table 1 (8 PEs).
const PaperRow kPaper[] = {
    {"Tri", 182, 5.8, 666233, 1, 13.0e6, 28.9e6},
    {"Semi", 104, 4.8, 268820, 23487, 4.8e6, 23.1e6},
    {"Puzzle", 151, 6.5, 849539, 3069, 15.6e6, 29.1e6},
    {"Pascal", 310, 6.1, 302432, 17681, 5.0e6, 10.5e6},
};

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Table 1: Short Summary of Benchmarks", ctx);
    BenchJson json(ctx, "table1_benchmarks");

    Table table("measured (simulated machine, " + std::to_string(ctx.pes) +
                " PEs)");
    table.setHeader({"bench", "lines", "cycles", "su", "reduct", "susp",
                     "instr", "ref"});
    Table paper("paper (ICOT emulator on Sequent Symmetry, 8 PEs)");
    paper.setHeader({"bench", "lines", "su", "reduct", "susp", "instr",
                     "ref"});

    for (const PaperRow& row : kPaper) {
        const BenchProgram& bench = benchmarkByName(row.bench);
        const BenchResult par =
            runBenchmark(bench, ctx.scale, paperConfig(ctx.pes));
        const BenchResult seq =
            runBenchmark(bench, ctx.scale, paperConfig(1));
        const double speedup =
            static_cast<double>(seq.run.makespan) /
            static_cast<double>(par.run.makespan);
        table.addRow({row.bench, std::to_string(par.sourceLines),
                      fmtEng(static_cast<double>(par.run.makespan)),
                      fmtFixed(speedup, 1), fmtCount(par.run.reductions),
                      fmtCount(par.run.suspensions),
                      fmtEng(static_cast<double>(par.run.instructions)),
                      fmtEng(static_cast<double>(par.run.memoryRefs))});
        paper.addRow({row.bench, std::to_string(row.lines),
                      fmtFixed(row.su, 1), fmtCount(
                          static_cast<std::uint64_t>(row.reductions)),
                      fmtCount(static_cast<std::uint64_t>(
                          row.suspensions)),
                      fmtEng(row.instr), fmtEng(row.refs)});
        json.row();
        json.set("bench", row.bench);
        json.set("measured_lines", par.sourceLines);
        json.set("measured_cycles", par.run.makespan);
        json.set("measured_speedup", speedup);
        json.set("measured_reductions", par.run.reductions);
        json.set("measured_suspensions", par.run.suspensions);
        json.set("measured_instructions", par.run.instructions);
        json.set("measured_refs", par.run.memoryRefs);
        json.set("paper_lines", row.lines);
        json.set("paper_speedup", row.su);
        json.set("paper_reductions", row.reductions);
        json.set("paper_suspensions", row.suspensions);
        json.set("paper_instructions", row.instr);
        json.set("paper_refs", row.refs);
    }
    json.write();
    table.print(std::cout);
    std::printf("\n");
    paper.print(std::cout);
    std::printf(
        "\nShape checks: refs/reduction within a few x of the paper's\n"
        "~30-90; Semi/Pascal suspension-heavy, Tri suspension-light;\n"
        "speedup grows with PE count on all four programs.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "table1_benchmarks", [&] { return pim::kl1::bench::run(argc, argv); });
}
