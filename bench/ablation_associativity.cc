/**
 * @file
 * Ablation: set associativity at fixed capacity (paper Section 4.3,
 * citing Matsumoto [10]: two-way PIM caches produce ~18% more bus
 * traffic than four-way on BUP, and direct-mapped caches are
 * significantly worse).
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Ablation: set associativity (4-Kword caches, 4-word blocks)",
           ctx);
    BenchJson json(ctx, "ablation_associativity");

    const std::uint32_t way_counts[] = {1, 2, 4, 8};

    Table bus("measured: bus cycles relative to four-way");
    Table miss("measured: miss ratio (%)");
    std::vector<std::string> header = {"ways"};
    for (const BenchProgram& bench : allBenchmarks())
        header.push_back(bench.name);
    header.push_back("mean");
    bus.setHeader(header);
    miss.setHeader(header);

    std::map<std::pair<std::string, std::uint32_t>, BenchResult> results;
    for (std::uint32_t ways : way_counts) {
        for (const BenchProgram& bench : allBenchmarks()) {
            Kl1Config config = paperConfig(ctx.pes);
            config.cache.geometry =
                CacheGeometry::forCapacity(4096, 4, ways);
            results[{bench.name, ways}] =
                runBenchmark(bench, ctx.scale, config);
        }
    }

    for (std::uint32_t ways : way_counts) {
        std::vector<std::string> bus_cells = {std::to_string(ways)};
        std::vector<std::string> miss_cells = {std::to_string(ways)};
        std::vector<double> rels;
        std::vector<double> misses;
        for (const BenchProgram& bench : allBenchmarks()) {
            const double rel =
                static_cast<double>(
                    results[{bench.name, ways}].bus.totalCycles) /
                static_cast<double>(
                    results[{bench.name, 4}].bus.totalCycles);
            const double mr =
                results[{bench.name, ways}].cache.missRatio() * 100;
            bus_cells.push_back(fmtFixed(rel, 2));
            miss_cells.push_back(fmtFixed(mr, 2));
            rels.push_back(rel);
            misses.push_back(mr);
        }
        bus_cells.push_back(fmtFixed(mean(rels), 2));
        miss_cells.push_back(fmtFixed(mean(misses), 2));
        bus.addRow(bus_cells);
        miss.addRow(miss_cells);

        json.row();
        json.set("ways", ways);
        json.set("measured_bus_rel_mean", mean(rels));
        json.set("measured_miss_pct_mean", mean(misses));
    }
    json.write();
    bus.print(std::cout);
    std::printf("\n");
    miss.print(std::cout);

    std::printf(
        "\nShape checks (paper Section 4.3 / Matsumoto [10]): two-way"
        "\ncosts noticeably more traffic than four-way (paper: +18%% on"
        "\nBUP) and direct-mapped is significantly worse; eight-way buys"
        "\nlittle over four-way.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "ablation_associativity", [&] { return pim::kl1::bench::run(argc, argv); });
}
