/**
 * @file
 * Reproduces Figure 2 of the paper: "Cache Capacity vs. Bus Traffic" —
 * four-way, four-word-block I+D caches from 512 data words to 16K data
 * words (the paper's x-axis is total storage bits including the
 * directory, assuming 5-byte words), plus the Section 4.4 two-word-bus
 * series (traffic drops to 62-75% of the one-word bus).
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Figure 2: Cache Capacity vs Miss Ratio and Bus Traffic", ctx);
    BenchJson json(ctx, "fig2_capacity");

    const std::uint64_t capacities[] = {512, 1024, 2048, 4096, 8192,
                                        16384};

    Table miss("measured: miss ratio (%)");
    Table bus("measured: bus cycles (millions)");
    std::vector<std::string> header = {"capacity", "bits"};
    for (const BenchProgram& bench : allBenchmarks())
        header.push_back(bench.name);
    miss.setHeader(header);
    bus.setHeader(header);

    for (std::uint64_t capacity : capacities) {
        const CacheGeometry geom =
            CacheGeometry::forCapacity(capacity, 4, 4);
        std::vector<std::string> miss_cells = {
            fmtCount(capacity) + "w", fmtEng(static_cast<double>(
                                          geom.storageBits()), 1)};
        std::vector<std::string> bus_cells = miss_cells;
        json.row();
        json.set("capacity_words", capacity);
        json.set("storage_bits", geom.storageBits());
        for (const BenchProgram& bench : allBenchmarks()) {
            Kl1Config config = paperConfig(ctx.pes);
            config.cache.geometry = geom;
            const BenchResult r = runBenchmark(bench, ctx.scale, config);
            miss_cells.push_back(fmtFixed(r.cache.missRatio() * 100, 2));
            bus_cells.push_back(
                fmtEng(static_cast<double>(r.bus.totalCycles), 2));
            json.set("measured_miss_pct_" + std::string(bench.name),
                     r.cache.missRatio() * 100);
            json.set("measured_bus_cycles_" + std::string(bench.name),
                     static_cast<std::uint64_t>(r.bus.totalCycles));
        }
        miss.addRow(miss_cells);
        bus.addRow(bus_cells);
    }
    json.write();
    miss.print(std::cout);
    std::printf("\n");
    bus.print(std::cout);

    // Section 4.4: two-word bus at the base 4-Kword capacity.
    std::printf("\ntwo-word bus (Section 4.4), 4-Kword caches:\n");
    Table wide("measured: two-word-bus traffic relative to one-word bus");
    wide.setHeader({"benchmark", "1-word cycles", "2-word cycles",
                    "ratio"});
    for (const BenchProgram& bench : allBenchmarks()) {
        Kl1Config narrow = paperConfig(ctx.pes);
        Kl1Config wide_config = paperConfig(ctx.pes);
        wide_config.timing.widthWords = 2;
        const BenchResult r1 = runBenchmark(bench, ctx.scale, narrow);
        const BenchResult r2 = runBenchmark(bench, ctx.scale,
                                            wide_config);
        wide.addRow({bench.name,
                     fmtEng(static_cast<double>(r1.bus.totalCycles), 2),
                     fmtEng(static_cast<double>(r2.bus.totalCycles), 2),
                     fmtFixed(static_cast<double>(r2.bus.totalCycles) /
                                  static_cast<double>(r1.bus.totalCycles),
                              2)});
    }
    wide.print(std::cout);

    std::printf(
        "\nShape checks (paper Fig. 2 / Section 4.4): the knee of the"
        "\nmiss-ratio and bus-traffic curves is near the 8-Kword cache"
        "\n(about 4e5 bits); Semi's small working set is captured even by"
        "\nthe smallest cache; a two-word bus cuts traffic to roughly"
        "\n0.62-0.75 of the one-word bus.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "fig2_capacity", [&] { return pim::kl1::bench::run(argc, argv); });
}
