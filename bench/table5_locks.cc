/**
 * @file
 * Reproduces Table 5 of the paper: "Hit Ratios of No Cost Lock
 * Operations" — the fraction of LR operations that hit in the cache, hit
 * in an exclusive block (and therefore cost zero bus cycles), and the
 * fraction of unlocks that find no waiter (also free).
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

struct PaperRow {
    const char* bench;
    double lr_hit, lr_excl, unlock_free;
};

const PaperRow kPaper[] = {
    {"Tri", 0.743, 0.658, 0.999},
    {"Semi", 0.912, 0.910, 0.993},
    {"Puzzle", 0.959, 0.954, 0.997},
    {"Pascal", 0.847, 0.816, 0.976},
};

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Table 5: Hit Ratios of No-Cost Lock Operations", ctx);
    BenchJson json(ctx, "table5_locks");

    Table table("measured");
    table.setHeader({"", "Tri", "Semi", "Puzzle", "Pascal"});
    std::vector<std::string> hit = {"LR hit-ratio"};
    std::vector<std::string> excl = {"LR hit-to-Exclusive"};
    std::vector<std::string> free_unlock = {"U,UW hit-to-No-waiter"};
    std::vector<std::string> lock_share = {"(LR share of refs %)"};

    for (const PaperRow& row : kPaper) {
        const BenchResult r =
            runBenchmark(benchmarkByName(row.bench), ctx.scale,
                         paperConfig(ctx.pes));
        const CacheStats& c = r.cache;
        const double lr = static_cast<double>(c.lrCount);
        const double un = static_cast<double>(c.unlockCount);
        hit.push_back(fmtFixed(
            lr == 0 ? 0 : static_cast<double>(c.lrHit) / lr, 3));
        excl.push_back(fmtFixed(
            lr == 0 ? 0 : static_cast<double>(c.lrHitExclusive) / lr, 3));
        free_unlock.push_back(fmtFixed(
            un == 0 ? 0 : static_cast<double>(c.unlockNoWaiter) / un, 3));
        lock_share.push_back(
            fmtFixed(pct(lr, static_cast<double>(r.refs.total())), 2));

        json.row();
        json.set("bench", row.bench);
        json.set("measured_lr_hit",
                 lr == 0 ? 0.0 : static_cast<double>(c.lrHit) / lr);
        json.set("measured_lr_hit_exclusive",
                 lr == 0 ? 0.0
                         : static_cast<double>(c.lrHitExclusive) / lr);
        json.set("measured_unlock_no_waiter",
                 un == 0 ? 0.0
                         : static_cast<double>(c.unlockNoWaiter) / un);
        json.set("paper_lr_hit", row.lr_hit);
        json.set("paper_lr_hit_exclusive", row.lr_excl);
        json.set("paper_unlock_no_waiter", row.unlock_free);
    }
    json.write();
    table.addRow(hit);
    table.addRow(excl);
    table.addRow(free_unlock);
    table.addRule();
    table.addRow(lock_share);
    table.print(std::cout);

    std::printf("\npaper Table 5:\n");
    Table paper("");
    paper.setHeader({"", "Tri", "Semi", "Puzzle", "Pascal"});
    std::vector<std::string> p1 = {"LR hit-ratio"};
    std::vector<std::string> p2 = {"LR hit-to-Exclusive"};
    std::vector<std::string> p3 = {"U,UW hit-to-No-waiter"};
    for (const PaperRow& row : kPaper) {
        p1.push_back(fmtFixed(row.lr_hit, 3));
        p2.push_back(fmtFixed(row.lr_excl, 3));
        p3.push_back(fmtFixed(row.unlock_free, 3));
    }
    paper.addRow(p1);
    paper.addRow(p2);
    paper.addRow(p3);
    paper.print(std::cout);

    std::printf(
        "\nShape checks: a high fraction of lock reads hit exclusive"
        "\nblocks, and unlocks to non-waiting locks are nearly all free —"
        "\nthe paper's claim that the lock protocol removes almost all"
        "\nlock/unlock bus traffic.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "table5_locks", [&] { return pim::kl1::bench::run(argc, argv); });
}
