/**
 * @file
 * Ablation: the lock protocol. Compares the PIM lock design
 * (zero-bus-cycle LR on exclusive hits, UL only when a waiter exists)
 * against a pessimistic software estimate where every lock/unlock pair
 * would cost bus transactions, and sweeps lock-directory pressure with
 * a synthetic contended workload (paper Sections 3.1 and 4.7).
 */

#include "bench_util.h"
#include "sim/trace_replay.h"
#include "trace/synth.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Ablation: lock protocol", ctx);
    BenchJson json(ctx, "ablation_locks");

    Table table("measured: lock operations on the benchmarks");
    table.setHeader({"benchmark", "LR ops", "zero-bus LR %",
                     "zero-bus unlock %", "lock-rejects",
                     "est. cycles saved"});
    for (const BenchProgram& bench : allBenchmarks()) {
        const BenchResult r =
            runBenchmark(bench, ctx.scale, paperConfig(ctx.pes));
        const CacheStats& c = r.cache;
        // A cache without the lock fast paths would put every LR and
        // every unlock on the bus (>= an invalidate, 2 cycles each).
        const std::uint64_t saved =
            2 * (c.lrHitExclusive + c.unlockNoWaiter);
        table.addRow(
            {bench.name, fmtCount(c.lrCount),
             fmtFixed(pct(static_cast<double>(c.lrHitExclusive),
                          static_cast<double>(c.lrCount)), 1),
             fmtFixed(pct(static_cast<double>(c.unlockNoWaiter),
                          static_cast<double>(c.unlockCount)), 1),
             fmtCount(c.lrLockWaits),
             fmtEng(static_cast<double>(saved), 2)});

        json.row();
        json.set("bench", bench.name);
        json.set("measured_lr_count", c.lrCount);
        json.set("measured_zero_bus_lr_pct",
                 pct(static_cast<double>(c.lrHitExclusive),
                     static_cast<double>(c.lrCount)));
        json.set("measured_zero_bus_unlock_pct",
                 pct(static_cast<double>(c.unlockNoWaiter),
                     static_cast<double>(c.unlockCount)));
        json.set("measured_est_cycles_saved", saved);
    }
    json.write();
    table.print(std::cout);

    // Synthetic contention sweep: how the protocol behaves as real lock
    // conflicts appear (the paper's premise is that they are rare).
    std::printf("\nsynthetic lock contention (4 PEs, LR/UW pairs):\n");
    Table sweep("");
    sweep.setHeader({"conflict %", "bus cycles", "UL broadcasts",
                     "lock rejects", "zero-bus unlock %"});
    for (std::uint32_t conflict : {0u, 1u, 5u, 25u, 100u}) {
        SystemConfig config;
        config.numPes = 4;
        config.cache.geometry = {4, 4, 64};
        config.memoryWords = 1 << 20;
        System sys(config);
        const auto trace = makeLockTraffic(
            4, 100, 200, 2000ull * ctx.scale, conflict * 100, 11);
        TraceReplay replay(sys, trace);
        replay.run();
        const CacheStats cache = sys.totalCacheStats();
        sweep.addRow(
            {std::to_string(conflict),
             fmtEng(static_cast<double>(sys.bus().stats().totalCycles),
                    2),
             fmtCount(sys.bus().stats().cmdCounts[static_cast<int>(
                 BusCmd::UL)]),
             fmtCount(replay.lockRejects()),
             fmtFixed(pct(static_cast<double>(cache.unlockNoWaiter),
                          static_cast<double>(cache.unlockCount)), 1)});
    }
    sweep.print(std::cout);

    std::printf(
        "\nShape checks: on the KL1 benchmarks nearly all lock reads and"
        "\nunlocks are bus-free (Table 5); under forced contention UL"
        "\nbroadcasts and busy-wait rejects appear and traffic rises —"
        "\nthe design is optimized for the no-conflict common case,"
        "\nexactly as the paper argues.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "ablation_locks", [&] { return pim::kl1::bench::run(argc, argv); });
}
