/**
 * @file
 * Ablation: single-assignment copying vs MRB-style in-place update.
 * The paper (Section 4, citing Nishida [12]) notes that MRB incremental
 * reuse "will significantly affect heap referencing characteristics".
 * Here the Puzzle benchmark's board updates run in both modes: the pure
 * set_vector_element/4 copies the whole board per placement, the
 * destructive set_vector_element_d/4 overwrites in place (legal on this
 * search's backtrack-free single-reference boards only when the board
 * is not shared — so the destructive variant re-clears cells on the way
 * back out, like an MRB-reused structure).
 */

#include "bench_util.h"
#include "kl1/compiler.h"
#include "kl1/parser.h"

namespace pim::kl1::bench {
namespace {

/** Depth-first sequential domino search with an in-place board: place,
 *  recurse, un-place — the MRB single-reference pattern. */
const char* kDestructiveSrc =
    "puzzle(W, H, C) :- true | S := W * H,\n"
    "    new_vector(S, 0, B), solve(B, W, S, C).\n"
    "solve(B, W, S, C) :- true | scan(B, 0, S, Pos),\n"
    "    branch(Pos, B, W, S, C).\n"
    "scan(_, S, S, Pos) :- true | Pos = -1.\n"
    "scan(B, I, S, Pos) :- I < S | vector_element(B, I, X),\n"
    "    scan2(X, B, I, S, Pos).\n"
    "scan2(1, B, I, S, Pos) :- true | I1 := I + 1, scan(B, I1, S, Pos).\n"
    "scan2(0, _, I, _, Pos) :- true | Pos = I.\n"
    "branch(-1, _, _, _, C) :- true | C = 1.\n"
    "branch(P, B, W, S, C) :- P >= 0 |\n"
    "    tryh(P, B, W, S, C1), andthen(C1, P, B, W, S, C).\n"
    "andthen(C1, P, B, W, S, C) :- integer(C1) |\n"
    "    tryv(P, B, W, S, C2), add2(C1, C2, C).\n"
    "add2(A, B, C) :- integer(A), integer(B) | C := A + B.\n"
    "tryh(P, B, W, S, C) :- P mod W < W - 1 | P1 := P + 1,\n"
    "    vector_element(B, P1, X), place(X, P, P1, B, W, S, C).\n"
    "tryh(P, _, W, _, C) :- P mod W >= W - 1 | C = 0.\n"
    "tryv(P, B, W, S, C) :- P + W < S | PW := P + W,\n"
    "    vector_element(B, PW, X), place(X, P, PW, B, W, S, C).\n"
    "tryv(P, _, W, S, C) :- P + W >= S | C = 0.\n"
    "place(1, _, _, _, _, _, C) :- true | C = 0.\n"
    "place(0, P, Q, B, W, S, C) :- true |\n"
    "    set_vector_element_d(B, P, 1, B1),\n"
    "    set_vector_element_d(B1, Q, 1, B2),\n"
    "    solve(B2, W, S, C0), unplace(C0, P, Q, B2, C).\n"
    "unplace(C0, P, Q, B, C) :- integer(C0) |\n"
    "    set_vector_element_d(B, P, 0, B1),\n"
    "    set_vector_element_d(B1, Q, 0, _),\n"
    "    C = C0.\n";

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Ablation: copying vs MRB-style in-place structure update",
           ctx);
    BenchJson json(ctx, "ablation_mrb");

    const BenchProgram& pure = benchmarkByName("Puzzle");
    const std::string query = pure.query(ctx.scale);
    const std::string expected = pure.expected(ctx.scale);

    Table table("measured (Puzzle board updates)");
    table.setHeader({"variant", "answer", "heap writes", "bus cycles",
                     "makespan"});

    // Pure copying variant (the benchmark itself, any PE count).
    {
        const BenchResult r =
            runBenchmark(pure, ctx.scale, paperConfig(ctx.pes));
        table.addRow({"copying (pure)", r.answer,
                      fmtCount(r.refs.count(Area::Heap, MemOp::DW) +
                               r.refs.count(Area::Heap, MemOp::W)),
                      fmtEng(static_cast<double>(r.bus.totalCycles), 2),
                      fmtEng(static_cast<double>(r.run.makespan), 2)});

        json.row();
        json.set("variant", "copying");
        json.set("measured_heap_writes",
                 r.refs.count(Area::Heap, MemOp::DW) +
                     r.refs.count(Area::Heap, MemOp::W));
        json.set("measured_bus_cycles",
                 static_cast<std::uint64_t>(r.bus.totalCycles));
        json.set("measured_makespan",
                 static_cast<std::uint64_t>(r.run.makespan));
    }
    // Destructive variant: inherently sequential (the board is a single
    // mutable object), so it runs on one PE.
    {
        Module module = compileProgram(parseProgram(kDestructiveSrc));
        Emulator emu(std::move(module), paperConfig(1));
        const RunStats stats = emu.run(query);
        std::string answer;
        for (const auto& [name, value] : emu.queryBindings()) {
            if (name == "R")
                answer = value;
        }
        if (answer != expected) {
            std::fprintf(stderr, "MRB variant computed %s, expected %s\n",
                         answer.c_str(), expected.c_str());
            return 1;
        }
        const RefStats& refs = emu.system().refStats();
        table.addRow(
            {"in-place (MRB, 1 PE)", answer,
             fmtCount(refs.count(Area::Heap, MemOp::DW) +
                      refs.count(Area::Heap, MemOp::W)),
             fmtEng(static_cast<double>(
                        emu.system().bus().stats().totalCycles), 2),
             fmtEng(static_cast<double>(stats.makespan), 2)});

        json.row();
        json.set("variant", "in_place_mrb");
        json.set("measured_heap_writes",
                 refs.count(Area::Heap, MemOp::DW) +
                     refs.count(Area::Heap, MemOp::W));
        json.set("measured_bus_cycles",
                 static_cast<std::uint64_t>(
                     emu.system().bus().stats().totalCycles));
        json.set("measured_makespan",
                 static_cast<std::uint64_t>(stats.makespan));
    }
    json.write();
    table.print(std::cout);

    std::printf(
        "\nShape checks: the copying search writes the whole board per\n"
        "placement while the MRB-style search writes two words (plus\n"
        "two to undo) — a large drop in heap writes, allocation and bus\n"
        "traffic, at the price of sequentializing the search. This is\n"
        "the referencing-characteristics shift the paper attributes to\n"
        "MRB-based incremental reuse [12].\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "ablation_mrb", [&] { return pim::kl1::bench::run(argc, argv); });
}
