/**
 * @file
 * OR-parallel Prolog traffic (paper Sections 1 and 5): "the cache
 * optimizations also improve the performance of non-committed-choice
 * languages, such as OR-parallel Prolog" (Aurora, Tick [20]). This
 * bench replays an Aurora-style synthetic access pattern — shared
 * read-only clause lookups, private binding-array writes, occasional
 * task grabs — through the PIM cache with and without the optimized
 * commands, and against the Illinois and write-through baselines.
 */

#include "bench_util.h"
#include "sim/trace_replay.h"
#include "trace/synth.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("OR-parallel (Aurora-style) traffic on the PIM cache", ctx);
    BenchJson json(ctx, "orparallel_traffic");

    const std::uint64_t refs_per_pe = 40000ull * ctx.scale;
    const auto trace =
        makeOrParallel(ctx.pes, 0, 1 << 12, 1 << 20, 1 << 20,
                       refs_per_pe, 200, 7);

    struct Variant {
        const char* name;
        OptPolicy policy;
        bool illinois;
        bool write_through;
    };
    const Variant variants[] = {
        {"PIM, all opts", OptPolicy::all(), false, false},
        {"PIM, no opts", OptPolicy::none(), false, false},
        {"Illinois", OptPolicy::none(), true, false},
        {"write-through", OptPolicy::none(), false, true},
    };

    Table table("measured");
    table.setHeader({"variant", "bus cycles", "rel.", "miss %",
                     "mem busy", "DW no-fetch"});
    double base = 0;
    for (const Variant& variant : variants) {
        SystemConfig config;
        config.numPes = ctx.pes;
        config.cache.geometry = {4, 4, 256};
        config.cache.copybackOnShare = variant.illinois;
        config.cache.writeThrough = variant.write_through;
        config.policy = variant.policy;
        config.memoryWords = 1ull << 26;
        System sys(config);
        TraceReplay replay(sys, trace);
        replay.run();
        const double cycles =
            static_cast<double>(sys.bus().stats().totalCycles);
        if (base == 0)
            base = cycles;
        const CacheStats cache = sys.totalCacheStats();
        table.addRow({variant.name, fmtEng(cycles, 2),
                      fmtFixed(cycles / base, 2),
                      fmtFixed(cache.missRatio() * 100, 2),
                      fmtEng(static_cast<double>(
                                 sys.bus().stats().memoryBusyCycles), 2),
                      fmtCount(cache.dwAllocNoFetch)});

        json.row();
        json.set("variant", variant.name);
        json.set("measured_bus_cycles",
                 static_cast<std::uint64_t>(sys.bus().stats().totalCycles));
        json.set("measured_bus_rel", cycles / base);
        json.set("measured_miss_pct", cache.missRatio() * 100);
        json.set("measured_dw_no_fetch", cache.dwAllocNoFetch);
    }
    json.write();
    table.print(std::cout);

    std::printf(
        "\nShape checks: DW removes the fetch-on-write misses of the"
        "\nfresh binding-array/trail writes (the dominant write stream"
        "\nof an OR-parallel engine — Tick reports AND-parallel Prolog"
        "\nbenefits from copy-back even more than procedural code), so"
        "\n'all opts' clearly beats 'no opts'; write-through is far"
        "\nworse; Illinois matches PIM on bus cycles but keeps memory"
        "\nbusier. The paper's Section 5 expectation that the commands"
        "\ncarry over to OR-parallel architectures.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "orparallel_traffic", [&] { return pim::kl1::bench::run(argc, argv); });
}
