/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 *
 * Every binary accepts --scale N (or REPRO_SCALE), --pes N (or
 * REPRO_PES) and --json PATH (or REPRO_JSON, writing BENCH_<name>.json
 * with measured + paper numbers), prints the paper's reference numbers
 * next to the measured ones, and exits nonzero only on simulator errors — absolute-number
 * mismatches with the paper are expected (our substrate is a synthesized
 * workload on a simulator, not ICOT's emulator on a Sequent; see
 * EXPERIMENTS.md for the shape criteria).
 */

#ifndef PIMCACHE_BENCH_BENCH_UTIL_H_
#define PIMCACHE_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_kl1/programs.h"
#include "bench_kl1/workload.h"
#include "common/fs_util.h"
#include "common/json.h"
#include "common/options.h"
#include "common/sim_fault.h"
#include "common/strutil.h"
#include "common/table.h"

namespace pim::kl1::bench {

/** Common command-line context for bench binaries. */
struct BenchContext {
    Options options;
    std::uint32_t scale = 2;
    std::uint32_t pes = 8;
    std::string jsonOut; ///< --json=PATH / REPRO_JSON ("" = off).

    static BenchContext
    parse(int argc, const char* const* argv)
    {
        // The environment cannot change under us, so each REPRO_* var is
        // looked up exactly once per process, no matter how many
        // contexts or rows a binary builds.
        static const std::string json_env = [] {
            const char* env = std::getenv("REPRO_JSON");
            return std::string(env == nullptr ? "" : env);
        }();
        BenchContext ctx;
        ctx.options = Options::parse(argc, argv);
        ctx.scale = static_cast<std::uint32_t>(ctx.options.getIntEnv(
            "scale", "REPRO_SCALE", defaultScale()));
        ctx.pes = static_cast<std::uint32_t>(
            ctx.options.getIntEnv("pes", "REPRO_PES", 8));
        ctx.jsonOut = ctx.options.getString("json", json_env);
        return ctx;
    }
};

/**
 * Machine-readable counterpart of a bench binary's tables
 * (docs/OBSERVABILITY.md). Callers open one row per table row or sweep
 * point and set() measured and paper-reference numbers into it; write()
 * lands the document when --json=PATH (or REPRO_JSON) is set and is a
 * silent no-op otherwise, so the ASCII output never changes. A PATH
 * ending in ".json" is used as-is; anything else is treated as a
 * directory receiving "BENCH_<name>.json".
 *
 * Schema: { "name", "scale", "pes", "rows": [ { flat key/value ... } ] }.
 */
class BenchJson
{
  public:
    BenchJson(const BenchContext& ctx, std::string name)
        : name_(std::move(name)), scale_(ctx.scale), pes_(ctx.pes)
    {
        const std::string& spec = ctx.jsonOut;
        if (spec.empty())
            return;
        if (spec.size() >= 5 &&
            spec.compare(spec.size() - 5, 5, ".json") == 0) {
            path_ = spec;
        } else {
            path_ = spec + "/BENCH_" + name_ + ".json";
        }
    }

    bool enabled() const { return !path_.empty(); }
    const std::string& path() const { return path_; }

    /** Start a new row; subsequent set() calls fill it. */
    void
    row()
    {
        if (enabled())
            rows_.emplace_back();
    }

    void
    set(const std::string& key, const std::string& v)
    {
        put(key, JsonWriter::quote(v));
    }

    void
    set(const std::string& key, const char* v)
    {
        put(key, JsonWriter::quote(v));
    }

    void
    set(const std::string& key, double v)
    {
        std::ostringstream os;
        JsonWriter json(os, /*pretty=*/false);
        json.value(v);
        put(key, os.str());
    }

    void
    set(const std::string& key, std::uint64_t v)
    {
        put(key, std::to_string(v));
    }

    void
    set(const std::string& key, std::uint32_t v)
    {
        set(key, static_cast<std::uint64_t>(v));
    }

    void
    set(const std::string& key, int v)
    {
        put(key, std::to_string(v));
    }

    /** Write the document if enabled. @return false on I/O failure. */
    bool
    write() const
    {
        if (!enabled())
            return true;
        std::ostringstream os;
        JsonWriter json(os, /*pretty=*/true);
        json.beginObject();
        json.field("name", name_);
        json.field("scale", static_cast<std::uint64_t>(scale_));
        json.field("pes", static_cast<std::uint64_t>(pes_));
        json.key("rows");
        json.beginArray();
        for (const auto& row : rows_) {
            json.beginObject();
            for (const auto& [key, literal] : row) {
                json.key(key);
                json.rawValue(literal);
            }
            json.endObject();
        }
        json.endArray();
        json.endObject();
        os << "\n";
        // Atomic publish (temp + rename; parents created like
        // `mkdir -p`): a killed or failing binary never leaves a torn
        // BENCH_*.json behind for json_check to choke on.
        std::string error;
        if (!writeFileAtomic(path_, os.str(), &error)) {
            std::fprintf(stderr, "bench: %s\n", error.c_str());
            return false;
        }
        return true;
    }

  private:
    void
    put(const std::string& key, std::string literal)
    {
        if (enabled() && !rows_.empty())
            rows_.back().emplace_back(key, std::move(literal));
    }

    std::string name_;
    std::uint32_t scale_;
    std::uint32_t pes_;
    std::string path_; ///< Resolved output path ("" = disabled).
    std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/**
 * Shared `main` body for the reproduction binaries: run @p body,
 * converting an escaped SimFault into a one-line structured error on
 * stderr (kind + message) and the exit code of its family
 * (simFaultExitCode: 10 config, 11 parse, 12 detection, 13 liveness,
 * 14 execution bound) — so scripts can triage failures without parsing
 * prose.
 */
template <typename Body>
int
runBenchMain(const char* name, Body&& body)
{
    try {
        return body();
    } catch (const SimFault& fault) {
        std::fprintf(stderr, "%s: error: kind=%s exit=%d %s\n", name,
                     simFaultKindName(fault.kind()),
                     simFaultExitCode(fault.kind()), fault.what());
        return simFaultExitCode(fault.kind());
    }
}

/** Print the standard banner for a reproduction binary. */
inline void
banner(const std::string& title, const BenchContext& ctx)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("workload scale %u, %u PEs (override with --scale/--pes "
                "or REPRO_SCALE/REPRO_PES)\n\n",
                ctx.scale, ctx.pes);
}

/** Percentage of @p part in @p whole (0 when whole is 0). */
inline double
pct(double part, double whole)
{
    return whole == 0.0 ? 0.0 : 100.0 * part / whole;
}

/** Mean of a vector. */
inline double
mean(const std::vector<double>& values)
{
    double sum = 0;
    for (double v : values)
        sum += v;
    return values.empty() ? 0.0 : sum / static_cast<double>(values.size());
}

/** Population standard deviation of a vector. */
inline double
stddev(const std::vector<double>& values)
{
    const double m = mean(values);
    double sum = 0;
    for (double v : values)
        sum += (v - m) * (v - m);
    return values.empty()
               ? 0.0
               : std::sqrt(sum / static_cast<double>(values.size()));
}

} // namespace pim::kl1::bench

#endif // PIMCACHE_BENCH_BENCH_UTIL_H_
