/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 *
 * Every binary accepts --scale N (or REPRO_SCALE) and --pes N (or
 * REPRO_PES), prints the paper's reference numbers next to the measured
 * ones, and exits nonzero only on simulator errors — absolute-number
 * mismatches with the paper are expected (our substrate is a synthesized
 * workload on a simulator, not ICOT's emulator on a Sequent; see
 * EXPERIMENTS.md for the shape criteria).
 */

#ifndef PIMCACHE_BENCH_BENCH_UTIL_H_
#define PIMCACHE_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_kl1/programs.h"
#include "bench_kl1/workload.h"
#include "common/options.h"
#include "common/strutil.h"
#include "common/table.h"

namespace pim::kl1::bench {

/** Common command-line context for bench binaries. */
struct BenchContext {
    Options options;
    std::uint32_t scale = 2;
    std::uint32_t pes = 8;

    static BenchContext
    parse(int argc, const char* const* argv)
    {
        BenchContext ctx;
        ctx.options = Options::parse(argc, argv);
        ctx.scale = static_cast<std::uint32_t>(ctx.options.getIntEnv(
            "scale", "REPRO_SCALE", defaultScale()));
        ctx.pes = static_cast<std::uint32_t>(
            ctx.options.getIntEnv("pes", "REPRO_PES", 8));
        return ctx;
    }
};

/** Print the standard banner for a reproduction binary. */
inline void
banner(const std::string& title, const BenchContext& ctx)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("workload scale %u, %u PEs (override with --scale/--pes "
                "or REPRO_SCALE/REPRO_PES)\n\n",
                ctx.scale, ctx.pes);
}

/** Percentage of @p part in @p whole (0 when whole is 0). */
inline double
pct(double part, double whole)
{
    return whole == 0.0 ? 0.0 : 100.0 * part / whole;
}

/** Mean of a vector. */
inline double
mean(const std::vector<double>& values)
{
    double sum = 0;
    for (double v : values)
        sum += v;
    return values.empty() ? 0.0 : sum / static_cast<double>(values.size());
}

/** Population standard deviation of a vector. */
inline double
stddev(const std::vector<double>& values)
{
    const double m = mean(values);
    double sum = 0;
    for (double v : values)
        sum += (v - m) * (v - m);
    return values.empty()
               ? 0.0
               : std::sqrt(sum / static_cast<double>(values.size()));
}

} // namespace pim::kl1::bench

#endif // PIMCACHE_BENCH_BENCH_UTIL_H_
