/**
 * @file
 * Cross-run perf regression ledger CLI (docs/OBSERVABILITY.md, ctest
 * label `obs`).
 *
 * Ingests the machine-readable outputs of the other binaries —
 * BENCH_*.json, SWEEP.json, SWEEP.perf.json, CAMPAIGN.json, attribution
 * documents — into one ledger record, appends it to an append-only
 * BENCH_HISTORY.jsonl, gates it against the previous record, and
 * optionally writes a markdown trend report:
 *
 *   pim_report BENCH_perf.json SWEEP.json --history=BENCH_HISTORY.jsonl \
 *       [--out=TREND.md] [--label=ci] [--stamp=...] [--max-drop-pct=20] \
 *       [--exact-tol-pct=0] [--update-golden] [--no-append] \
 *       [--trend-limit=N]
 *
 * Throughput metrics (refs/sec, sims/sec) fail only on a drop beyond
 * --max-drop-pct; exact metrics (simulated cycles, bus totals, failure
 * counts) fail on any drift unless --update-golden accepts the new
 * values. Exit codes: 0 = gate passed, 3 = regression detected,
 * 1 = usage error, 10/11 = config/parse faults (runBenchMain).
 */

#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fs_util.h"
#include "common/json.h"
#include "common/options.h"
#include "obs/perf_ledger.h"

using namespace pim;
using namespace pim::kl1::bench;

namespace {

void
usage()
{
    std::printf(
        "pim_report: perf regression ledger over bench/sweep JSON\n"
        "usage: pim_report FILES... --history=PATH [options]\n"
        "  --history=PATH      BENCH_HISTORY.jsonl ledger (required)\n"
        "  --out=PATH          write a markdown trend report\n"
        "  --label=S           record label (default 'local')\n"
        "  --stamp=S           record timestamp (default: current UTC;\n"
        "                      pass a fixed value for reproducible runs)\n"
        "  --max-drop-pct=X    allowed throughput drop (default 20)\n"
        "  --exact-tol-pct=X   allowed exact-metric drift (default 0)\n"
        "  --update-golden     accept exact drift as the new golden\n"
        "  --no-append         gate only, do not grow the ledger\n"
        "  --trend-limit=N     trend rows per metric (default 10)\n"
        "exit: 0 gate passed, 3 regression detected, 1 usage\n");
}

std::string
utcNow()
{
    char buf[32];
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc;
    gmtime_r(&now, &tm_utc);
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

int
reportMain(int argc, char** argv)
{
    const Options opts = Options::parse(argc, argv);
    if (opts.getBool("help")) {
        usage();
        return 0;
    }
    const std::string history_path = opts.getString("history", "");
    const std::vector<std::string>& files = opts.positional();
    if (history_path.empty() || files.empty()) {
        usage();
        return 1;
    }

    GateConfig gate_config;
    gate_config.maxDropPct = opts.getDouble("max-drop-pct", 20.0);
    gate_config.exactTolPct = opts.getDouble("exact-tol-pct", 0.0);
    gate_config.updateGolden = opts.getBool("update-golden");

    // One record for the whole invocation: every input document's
    // metrics, namespaced by document shape so they never collide.
    LedgerRecord record;
    record.stamp = opts.getString("stamp", utcNow());
    record.label = opts.getString("label", "local");
    for (const std::string& file : files) {
        const JsonValue doc = JsonValue::parseFile(file);
        const std::map<std::string, LedgerMetric> metrics =
            extractLedgerMetrics(doc);
        if (metrics.empty()) {
            std::printf("note: %s: no tracked metrics (unknown shape)\n",
                        file.c_str());
            continue;
        }
        record.inputs.push_back(file);
        for (const auto& [key, metric] : metrics)
            record.metrics[key] = metric;
    }
    if (record.metrics.empty()) {
        std::fprintf(stderr,
                     "pim_report: no tracked metrics in any input\n");
        return 1;
    }

    std::vector<LedgerRecord> history = loadLedger(history_path);
    record.seq = history.empty() ? 1 : history.back().seq + 1;

    GateResult gate;
    if (history.empty()) {
        std::printf("ledger %s is empty: seeding baseline record\n",
                    history_path.c_str());
    } else {
        gate = gateRecords(history.back(), record, gate_config);
    }

    if (!opts.getBool("no-append"))
        appendLedger(history_path, record);
    history.push_back(record);

    const std::string trend_out = opts.getString("out", "");
    if (!trend_out.empty()) {
        const std::size_t limit = static_cast<std::size_t>(
            opts.getInt("trend-limit", 10));
        std::string error;
        if (!writeFileAtomic(trend_out, trendMarkdown(history, limit),
                             &error)) {
            std::fprintf(stderr, "pim_report: cannot write %s: %s\n",
                         trend_out.c_str(), error.c_str());
            return 1;
        }
        std::printf("trend -> %s\n", trend_out.c_str());
    }

    std::printf("record seq %llu: %zu metric(s) from %zu input(s), "
                "%llu compared against the previous record\n",
                static_cast<unsigned long long>(record.seq),
                record.metrics.size(), record.inputs.size(),
                static_cast<unsigned long long>(gate.compared));
    for (const std::string& note : gate.notes)
        std::printf("note: %s\n", note.c_str());
    for (const GateFinding& finding : gate.regressions) {
        std::printf("REGRESSION: %s: %g -> %g (%+.1f%%, %s)\n",
                    finding.metric.c_str(), finding.baseline,
                    finding.current, finding.deltaPct,
                    finding.exact ? "exact metric drifted"
                                  : "throughput drop beyond gate");
    }
    if (gate.failed()) {
        std::printf("gate: FAILED with %zu regression(s)\n",
                    gate.regressions.size());
        return 3;
    }
    std::printf("gate: ok\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    return runBenchMain("pim_report",
                        [&] { return reportMain(argc, argv); });
}
