/**
 * @file
 * Reproduces Figure 3 of the paper: "Number of PEs vs. Bus Traffic" —
 * the base cache with all optimized commands, 1 to 8 PEs, plus the
 * Section 4.5 analysis: as PEs are added, the communication area's share
 * of bus traffic grows (0 -> ~29%) and the heap's share falls
 * (~71% -> ~45%), i.e. inter-PE communication (load balancing) becomes
 * the dominant bus cost — most dramatically for Tri.
 *
 * --clusters appends a beyond-the-paper scaling section (off by
 * default, so the default output stays golden-stable): one benchmark at
 * 128/256/512/1024 PEs, each run twice — on the paper's single snooping
 * bus and on the clustered topology (per-cluster buses plus an
 * inter-cluster directory, docs/ARCHITECTURE.md) — showing where the
 * single bus saturates and how clustering moves the knee.
 *
 *   --clusters            enable the wide-PE section
 *   --cluster-size=N      PEs per snooping-bus cluster (default 16)
 *   --hop-cycles=N        one-way inter-cluster hop cost (default 4)
 *   --cluster-bench=NAME  benchmark to scale (default Tri)
 *   --cluster-max-pes=N   largest PE count (default 1024)
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

/**
 * The wide-PE single-bus vs clustered comparison. Every run is a pure
 * function of its config, so the section is deterministic at any PE
 * count; rows land in the JSON document as bench "fig3_clusters".
 */
void
runClusterSection(const BenchContext& ctx, BenchJson& json)
{
    const std::string bench_name =
        ctx.options.getString("cluster-bench", "Tri");
    const BenchProgram& bench = benchmarkByName(bench_name);
    const std::uint32_t cluster_size = static_cast<std::uint32_t>(
        ctx.options.getInt("cluster-size", 16));
    const std::uint32_t hop_cycles = static_cast<std::uint32_t>(
        ctx.options.getInt("hop-cycles", 4));
    const std::uint32_t max_pes = static_cast<std::uint32_t>(
        ctx.options.getInt("cluster-max-pes", 1024));

    Table table("measured: single bus vs clustered topology (" +
                bench_name + ", " + std::to_string(cluster_size) +
                " PEs/cluster, " + std::to_string(hop_cycles) +
                "-cycle hops)");
    table.setHeader({"PEs", "bus Mcyc", "makespan", "clu Mcyc",
                     "clu makespan", "x-clu Mcyc", "gain"});

    for (std::uint32_t pes = 128; pes <= max_pes; pes *= 2) {
        BenchResult results[2];
        for (int mode = 0; mode < 2; ++mode) {
            Kl1Config config = paperConfig(pes);
            if (mode == 1) {
                config.cluster.clusterSize = cluster_size;
                config.cluster.hopCycles = hop_cycles;
            }
            results[mode] = runBenchmark(bench, ctx.scale, config);

            json.row();
            json.set("bench", "fig3_clusters");
            json.set("benchmark", bench_name);
            json.set("pes", pes);
            json.set("mode", mode == 1 ? "clustered" : "single-bus");
            json.set("cluster_size",
                     mode == 1 ? cluster_size : std::uint32_t{0});
            json.set("hop_cycles", hop_cycles);
            json.set("measured_makespan",
                     static_cast<std::uint64_t>(results[mode].run.makespan));
            json.set("measured_bus_cycles",
                     static_cast<std::uint64_t>(
                         results[mode].bus.totalCycles));
            json.set("inter_cluster_cycles",
                     static_cast<std::uint64_t>(
                         results[mode].bus.interClusterCycles));
        }
        const double single = static_cast<double>(results[0].run.makespan);
        const double clustered =
            static_cast<double>(results[1].run.makespan);
        table.addRow(
            {std::to_string(pes),
             fmtEng(static_cast<double>(results[0].bus.totalCycles), 2),
             fmtEng(static_cast<double>(results[0].run.makespan), 2),
             fmtEng(static_cast<double>(results[1].bus.totalCycles), 2),
             fmtEng(static_cast<double>(results[1].run.makespan), 2),
             fmtEng(static_cast<double>(
                        results[1].bus.interClusterCycles), 2),
             fmtFixed(single / clustered, 2) + "x"});
    }

    std::printf("\n");
    table.print(std::cout);
    std::printf(
        "\nBeyond the paper: the single snooping bus serializes every"
        "\nmiss machine-wide, so past ~10^2 PEs added PEs only deepen"
        "\nbus queueing (makespan stops improving). Clustering gives"
        "\neach group of %u PEs its own bus; the inter-cluster directory"
        "\nroutes traffic only to clusters that hold copies, trading"
        "\n%u-cycle hops (x-clu) for machine-wide serialization.\n",
        cluster_size, hop_cycles);
}

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Figure 3: Number of PEs vs Bus Traffic", ctx);
    BenchJson json(ctx, "fig3_pes");

    const std::uint32_t pe_counts[] = {1, 2, 4, 6, 8};

    Table bus("measured: bus cycles (millions)");
    std::vector<std::string> header = {"PEs"};
    for (const BenchProgram& bench : allBenchmarks())
        header.push_back(bench.name);
    bus.setHeader(header);

    Table shares("measured: average area shares of bus traffic (%)");
    shares.setHeader({"PEs", "heap", "goal", "susp", "comm"});

    Table speedup("measured: simulated speedup over 1 PE");
    speedup.setHeader(header);

    std::map<std::string, double> base_span;

    for (std::uint32_t pes : pe_counts) {
        std::vector<std::string> bus_cells = {std::to_string(pes)};
        std::vector<std::string> su_cells = {std::to_string(pes)};
        std::vector<double> heap_share;
        std::vector<double> goal_share;
        std::vector<double> susp_share;
        std::vector<double> comm_share;
        json.row();
        json.set("pes", pes);
        for (const BenchProgram& bench : allBenchmarks()) {
            const BenchResult r =
                runBenchmark(bench, ctx.scale, paperConfig(pes));
            bus_cells.push_back(
                fmtEng(static_cast<double>(r.bus.totalCycles), 2));
            if (pes == 1)
                base_span[bench.name] =
                    static_cast<double>(r.run.makespan);
            su_cells.push_back(fmtFixed(
                base_span[bench.name] /
                    static_cast<double>(r.run.makespan), 1));
            json.set("measured_bus_cycles_" + std::string(bench.name),
                     static_cast<std::uint64_t>(r.bus.totalCycles));
            json.set("measured_speedup_" + std::string(bench.name),
                     base_span[bench.name] /
                         static_cast<double>(r.run.makespan));
            const double total =
                static_cast<double>(r.bus.totalCycles);
            auto share = [&](Area area) {
                return pct(static_cast<double>(
                               r.bus.cyclesByArea[static_cast<int>(area)]),
                           total);
            };
            heap_share.push_back(share(Area::Heap));
            goal_share.push_back(share(Area::Goal));
            susp_share.push_back(share(Area::Susp));
            comm_share.push_back(share(Area::Comm));
        }
        bus.addRow(bus_cells);
        speedup.addRow(su_cells);
        shares.addRow({std::to_string(pes),
                       fmtFixed(mean(heap_share), 1),
                       fmtFixed(mean(goal_share), 1),
                       fmtFixed(mean(susp_share), 1),
                       fmtFixed(mean(comm_share), 1)});
        json.set("measured_share_pct_heap", mean(heap_share));
        json.set("measured_share_pct_goal", mean(goal_share));
        json.set("measured_share_pct_susp", mean(susp_share));
        json.set("measured_share_pct_comm", mean(comm_share));
    }
    bus.print(std::cout);
    std::printf("\n");
    speedup.print(std::cout);
    std::printf("\n");
    shares.print(std::cout);

    std::printf(
        "\nShape checks (paper Fig. 3 / Section 4.5): bus traffic grows"
        "\nwith the PE count, most steeply for Tri (task-distribution"
        "\ntraffic of a poorly balanced wide search tree); the comm"
        "\narea's share of bus cycles rises sharply from 1 to 8 PEs while"
        "\nthe heap's share falls (paper: comm 0->29%%, heap 71->45%%).\n");

    if (ctx.options.getBool("clusters"))
        runClusterSection(ctx, json);
    json.write();
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "fig3_pes", [&] { return pim::kl1::bench::run(argc, argv); });
}
