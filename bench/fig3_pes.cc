/**
 * @file
 * Reproduces Figure 3 of the paper: "Number of PEs vs. Bus Traffic" —
 * the base cache with all optimized commands, 1 to 8 PEs, plus the
 * Section 4.5 analysis: as PEs are added, the communication area's share
 * of bus traffic grows (0 -> ~29%) and the heap's share falls
 * (~71% -> ~45%), i.e. inter-PE communication (load balancing) becomes
 * the dominant bus cost — most dramatically for Tri.
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Figure 3: Number of PEs vs Bus Traffic", ctx);
    BenchJson json(ctx, "fig3_pes");

    const std::uint32_t pe_counts[] = {1, 2, 4, 6, 8};

    Table bus("measured: bus cycles (millions)");
    std::vector<std::string> header = {"PEs"};
    for (const BenchProgram& bench : allBenchmarks())
        header.push_back(bench.name);
    bus.setHeader(header);

    Table shares("measured: average area shares of bus traffic (%)");
    shares.setHeader({"PEs", "heap", "goal", "susp", "comm"});

    Table speedup("measured: simulated speedup over 1 PE");
    speedup.setHeader(header);

    std::map<std::string, double> base_span;

    for (std::uint32_t pes : pe_counts) {
        std::vector<std::string> bus_cells = {std::to_string(pes)};
        std::vector<std::string> su_cells = {std::to_string(pes)};
        std::vector<double> heap_share;
        std::vector<double> goal_share;
        std::vector<double> susp_share;
        std::vector<double> comm_share;
        json.row();
        json.set("pes", pes);
        for (const BenchProgram& bench : allBenchmarks()) {
            const BenchResult r =
                runBenchmark(bench, ctx.scale, paperConfig(pes));
            bus_cells.push_back(
                fmtEng(static_cast<double>(r.bus.totalCycles), 2));
            if (pes == 1)
                base_span[bench.name] =
                    static_cast<double>(r.run.makespan);
            su_cells.push_back(fmtFixed(
                base_span[bench.name] /
                    static_cast<double>(r.run.makespan), 1));
            json.set("measured_bus_cycles_" + std::string(bench.name),
                     static_cast<std::uint64_t>(r.bus.totalCycles));
            json.set("measured_speedup_" + std::string(bench.name),
                     base_span[bench.name] /
                         static_cast<double>(r.run.makespan));
            const double total =
                static_cast<double>(r.bus.totalCycles);
            auto share = [&](Area area) {
                return pct(static_cast<double>(
                               r.bus.cyclesByArea[static_cast<int>(area)]),
                           total);
            };
            heap_share.push_back(share(Area::Heap));
            goal_share.push_back(share(Area::Goal));
            susp_share.push_back(share(Area::Susp));
            comm_share.push_back(share(Area::Comm));
        }
        bus.addRow(bus_cells);
        speedup.addRow(su_cells);
        shares.addRow({std::to_string(pes),
                       fmtFixed(mean(heap_share), 1),
                       fmtFixed(mean(goal_share), 1),
                       fmtFixed(mean(susp_share), 1),
                       fmtFixed(mean(comm_share), 1)});
        json.set("measured_share_pct_heap", mean(heap_share));
        json.set("measured_share_pct_goal", mean(goal_share));
        json.set("measured_share_pct_susp", mean(susp_share));
        json.set("measured_share_pct_comm", mean(comm_share));
    }
    json.write();
    bus.print(std::cout);
    std::printf("\n");
    speedup.print(std::cout);
    std::printf("\n");
    shares.print(std::cout);

    std::printf(
        "\nShape checks (paper Fig. 3 / Section 4.5): bus traffic grows"
        "\nwith the PE count, most steeply for Tri (task-distribution"
        "\ntraffic of a poorly balanced wide search tree); the comm"
        "\narea's share of bus cycles rises sharply from 1 to 8 PEs while"
        "\nthe heap's share falls (paper: comm 0->29%%, heap 71->45%%).\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "fig3_pes", [&] { return pim::kl1::bench::run(argc, argv); });
}
