/**
 * @file
 * Reproduces Table 3 of the paper: "Percentage of Memory References by
 * Operation" — the split between R, LR, W and UW+U, over all references,
 * over data references only, and over heap references (optimized
 * commands counted as their plain equivalents, as the paper does).
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Table 3: % Memory References by Operation", ctx);
    BenchJson json(ctx, "table3_operations");

    struct Row {
        std::string name;
        double all[4] = {};  // R, LR, W, UW+U over inst+data
        double data[4] = {}; // over data refs
        double heap[4] = {}; // over heap refs
    };
    std::vector<Row> rows;

    for (const BenchProgram& bench : allBenchmarks()) {
        const BenchResult r = runBenchmark(
            bench, ctx.scale, paperConfig(ctx.pes, OptPolicy::none()));
        Row row;
        row.name = bench.name;
        const RefStats& refs = r.refs;
        const double total = static_cast<double>(refs.total());
        const double data = static_cast<double>(refs.dataTotal());
        const double heap =
            static_cast<double>(refs.areaTotal(Area::Heap));

        auto fill = [&](double* out, auto getter, double denom) {
            out[0] = pct(getter(MemOp::R), denom);
            out[1] = pct(getter(MemOp::LR), denom);
            out[2] = pct(getter(MemOp::W), denom);
            out[3] = pct(getter(MemOp::UW) + getter(MemOp::U), denom);
        };
        fill(row.all,
             [&](MemOp op) {
                 return static_cast<double>(refs.opTotalDemoted(op));
             },
             total);
        fill(row.data,
             [&](MemOp op) {
                 return static_cast<double>(refs.opTotalDemoted(op)) -
                        static_cast<double>(refs.opTotalDemoted(
                            Area::Instruction, op));
             },
             data);
        fill(row.heap,
             [&](MemOp op) {
                 return static_cast<double>(
                     refs.opTotalDemoted(Area::Heap, op));
             },
             heap);
        rows.push_back(row);

        static const char* const kOps[] = {"r", "lr", "w", "uw_u"};
        json.row();
        json.set("bench", bench.name);
        for (int k = 0; k < 4; ++k) {
            const std::string op = kOps[k];
            json.set("measured_all_pct_" + op, row.all[k]);
            json.set("measured_data_pct_" + op, row.data[k]);
            json.set("measured_heap_pct_" + op, row.heap[k]);
        }
    }
    // Paper Table 3 reports averages over the four benchmarks.
    json.row();
    json.set("bench", "paper_mean");
    json.set("paper_all_pct_r", 78.95);
    json.set("paper_all_pct_lr", 2.66);
    json.set("paper_all_pct_w", 15.71);
    json.set("paper_all_pct_uw_u", 2.70);
    json.set("paper_data_pct_r", 58.91);
    json.set("paper_data_pct_lr", 5.14);
    json.set("paper_data_pct_w", 30.73);
    json.set("paper_data_pct_uw_u", 5.22);
    json.set("paper_heap_pct_r", 57.64);
    json.set("paper_heap_pct_lr", 10.39);
    json.set("paper_heap_pct_w", 21.38);
    json.set("paper_heap_pct_uw_u", 10.60);
    json.write();

    auto section = [&](const char* caption, double (Row::*field)[4]) {
        Table table(caption);
        table.setHeader({"", "R", "LR", "W", "UW+U"});
        std::vector<std::vector<double>> cols(4);
        for (const Row& row : rows) {
            std::vector<std::string> cells = {row.name};
            for (int k = 0; k < 4; ++k) {
                cells.push_back(fmtFixed((row.*field)[k], 2));
                cols[k].push_back((row.*field)[k]);
            }
            table.addRow(cells);
        }
        table.addRule();
        std::vector<std::string> mean_cells = {"E"};
        std::vector<std::string> sd_cells = {"sigma"};
        for (const auto& col : cols) {
            mean_cells.push_back(fmtFixed(mean(col), 2));
            sd_cells.push_back(fmtFixed(stddev(col), 2));
        }
        table.addRow(mean_cells);
        table.addRow(sd_cells);
        table.print(std::cout);
        std::printf("\n");
    };

    section("measured: % of all references (inst+data)", &Row::all);
    section("measured: % of data references", &Row::data);
    section("measured: % of heap references", &Row::heap);

    std::printf(
        "paper Table 3:\n"
        "  E(inst+data): R 78.95  LR 2.66  W 15.71  UW+U 2.70\n"
        "  E(data):      R 58.91  LR 5.14  W 30.73  UW+U 5.22\n"
        "  E(heap):      R 57.64  LR 10.39 W 21.38  UW+U 10.60\n"
        "  heap rows:    Tri 54.62/12.06/21.27/12.06,"
        " Semi 93.17/1.70/3.42/1.71,\n"
        "                Puzzle 41.88/11.90/34.26/11.96,"
        " Pascal 40.87/15.88/26.57/16.68\n"
        "\nShape checks: reads dominate; data-write frequency is tens of"
        "\npercent (single assignment); lock/unlock traffic is a"
        "\nnon-negligible share of heap references; Semi is read-mostly.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "table3_operations", [&] { return pim::kl1::bench::run(argc, argv); });
}
