/**
 * @file
 * Reproduces Table 2 of the paper: "% Memory References and Bus Cycles
 * by Area" — how the five KL1 storage areas (instruction, heap, goal,
 * suspension, communication) split the memory references and the common
 * bus cycles, on the base cache with NO optimized commands.
 *
 * Paper configuration: 8 PEs, 4-Kword four-way set-associative I+D
 * caches with four-word blocks, 8-cycle memory, one-word bus.
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

const Area kDataAreas[] = {Area::Heap, Area::Goal, Area::Susp,
                           Area::Comm};

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Table 2: % Memory References and Bus Cycles by Area", ctx);
    BenchJson json(ctx, "table2_areas");

    struct Row {
        std::string name;
        double refPct[6] = {};   // by Area enum index
        double busPct[6] = {};
        double dataRefPct[6] = {};
        double dataBusPct[6] = {};
    };
    std::vector<Row> rows;

    for (const BenchProgram& bench : allBenchmarks()) {
        const BenchResult r = runBenchmark(
            bench, ctx.scale, paperConfig(ctx.pes, OptPolicy::none()));
        Row row;
        row.name = bench.name;
        const double total_refs = static_cast<double>(r.refs.total());
        const double data_refs = static_cast<double>(r.refs.dataTotal());
        double total_bus = 0;
        double data_bus = 0;
        for (int a = 0; a < kNumAreaSlots; ++a)
            total_bus += static_cast<double>(r.bus.cyclesByArea[a]);
        data_bus = total_bus -
                   static_cast<double>(r.bus.cyclesByArea[static_cast<int>(
                       Area::Instruction)]);
        for (int a = 0; a < kNumAreaSlots; ++a) {
            const Area area = static_cast<Area>(a);
            row.refPct[a] =
                pct(static_cast<double>(r.refs.areaTotal(area)),
                    total_refs);
            row.busPct[a] = pct(
                static_cast<double>(r.bus.cyclesByArea[a]), total_bus);
            row.dataRefPct[a] =
                area == Area::Instruction
                    ? 0.0
                    : pct(static_cast<double>(r.refs.areaTotal(area)),
                          data_refs);
            row.dataBusPct[a] =
                area == Area::Instruction
                    ? 0.0
                    : pct(static_cast<double>(r.bus.cyclesByArea[a]),
                          data_bus);
        }
        rows.push_back(row);

        json.row();
        json.set("bench", bench.name);
        for (int a = 0; a < kNumAreas; ++a) {
            const std::string area = areaName(static_cast<Area>(a));
            json.set("measured_ref_pct_" + area, row.refPct[a]);
            json.set("measured_bus_pct_" + area, row.busPct[a]);
        }
    }
    // Paper Table 2 reports averages over the four benchmarks.
    json.row();
    json.set("bench", "paper_mean");
    json.set("paper_ref_pct_inst", 42.87);
    json.set("paper_ref_pct_heap", 34.31);
    json.set("paper_ref_pct_goal", 20.71);
    json.set("paper_ref_pct_susp", 0.26);
    json.set("paper_ref_pct_comm", 1.86);
    json.set("paper_bus_pct_inst", 4.52);
    json.set("paper_bus_pct_heap", 65.70);
    json.set("paper_bus_pct_goal", 11.16);
    json.set("paper_bus_pct_susp", 1.14);
    json.set("paper_bus_pct_comm", 17.49);
    json.write();

    auto section = [&](const char* caption,
                       double (Row::*field)[6], bool include_inst) {
        Table table(caption);
        std::vector<std::string> header = {"", "inst", "data"};
        for (Area area : kDataAreas)
            header.push_back(areaName(area));
        table.setHeader(header);
        std::vector<std::vector<double>> columns(6);
        for (const Row& row : rows) {
            std::vector<std::string> cells = {row.name};
            const double inst =
                (row.*field)[static_cast<int>(Area::Instruction)];
            cells.push_back(include_inst ? fmtFixed(inst, 2) : "-");
            double data = 0;
            for (Area area : kDataAreas)
                data += (row.*field)[static_cast<int>(area)];
            cells.push_back(fmtFixed(data, 2));
            columns[0].push_back(inst);
            columns[1].push_back(data);
            int k = 2;
            for (Area area : kDataAreas) {
                const double v = (row.*field)[static_cast<int>(area)];
                cells.push_back(fmtFixed(v, 2));
                columns[k++].push_back(v);
            }
            table.addRow(cells);
        }
        table.addRule();
        std::vector<std::string> mean_cells = {"E"};
        std::vector<std::string> sd_cells = {"sigma"};
        for (const auto& col : columns) {
            mean_cells.push_back(fmtFixed(mean(col), 2));
            sd_cells.push_back(fmtFixed(stddev(col), 2));
        }
        table.addRow(mean_cells);
        table.addRow(sd_cells);
        table.print(std::cout);
        std::printf("\n");
    };

    section("measured: % of all memory references (inst+data)",
            &Row::refPct, true);
    section("measured: % of all bus cycles (inst+data)", &Row::busPct,
            true);
    section("measured: % of data memory references", &Row::dataRefPct,
            false);
    section("measured: % of data bus cycles", &Row::dataBusPct, false);

    std::printf(
        "paper Table 2 (averages over the four benchmarks):\n"
        "  memory refs  E(inst+data): inst 42.87, heap 34.31, goal 20.71,"
        " susp 0.26, comm 1.86\n"
        "  bus cycles   E(inst+data): inst 4.52, heap 65.70, goal 11.16,"
        " susp 1.14, comm 17.49\n"
        "  bus cycles by benchmark (data %%): Tri 92.85, Semi 99.07,"
        " Puzzle 91.31, Pascal 98.70\n"
        "\nShape checks: instruction refs are a large share of references"
        "\nbut a small share of bus cycles (the cache removes instruction"
        "\nbandwidth); the heap dominates data bus cycles; the tiny comm"
        "\narea is disproportionately expensive in bus cycles.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "table2_areas", [&] { return pim::kl1::bench::run(argc, argv); });
}
