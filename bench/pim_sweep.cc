/**
 * @file
 * Parallel experiment engine CLI (docs/EXPERIMENTS.md): expands a
 * declarative sweep spec into independent simulation tasks, fans them
 * out across a work-stealing thread pool, and aggregates the rows into
 * one deterministic SWEEP.json (plus per-experiment BENCH_sweep_*.json
 * and a SWEEP.perf.json throughput sidecar).
 *
 * `--spec=paper` reproduces the entire Table 1-5 / Figure 1-3 grid in
 * one invocation; SWEEP.json is byte-identical for any --jobs value.
 *
 * Exit codes: 0 = every task ran (failed rows are results, reported in
 * SWEEP.json); 1 = bad usage, unreadable spec, or unwritable output.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/options.h"
#include "common/sim_fault.h"
#include "common/strutil.h"
#include "common/thread_pool.h"
#include "sweep/sweep_runner.h"

using namespace pim;
using namespace pim::sweep;

namespace {

void
usage()
{
    std::printf(
        "pim_sweep: parallel sweep over simulation parameter grids\n"
        "  --spec=FILE|paper|smoke  sweep spec: a JSON file, the built-in\n"
        "                      full paper grid, or the 4-point CI smoke\n"
        "  --jobs=N            worker threads (default: hardware)\n"
        "  --out=DIR           write SWEEP.json, SWEEP.perf.json and\n"
        "                      BENCH_sweep_<id>.json here (created if\n"
        "                      missing; default: no files, stdout only)\n"
        "  --scale=N           override every kl1 task's workload scale\n"
        "  --list              print the expanded grid and exit\n"
        "  --perf-inline       embed the perf block in SWEEP.json (forfeits\n"
        "                      cross---jobs byte-identity)\n");
}

const char* const kKnownFlags[] = {
    "spec", "jobs", "out", "scale", "list", "perf-inline", "help",
};

/** Like pim_stress: a mistyped flag must not silently run a default. */
bool
flagsAreKnown(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            continue;
        std::string name(argv[i] + 2);
        name = name.substr(0, name.find('='));
        bool known = false;
        for (const char* flag : kKnownFlags)
            known = known || name == flag;
        if (!known) {
            std::fprintf(stderr, "pim_sweep: unknown option --%s\n",
                         name.c_str());
            return false;
        }
    }
    return true;
}

SweepSpec
loadSpec(const std::string& spec_arg)
{
    if (spec_arg == "paper")
        return SweepSpec::paperGrid();
    if (spec_arg == "smoke")
        return SweepSpec::smokeGrid();
    return SweepSpec::parseFile(spec_arg);
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opts = Options::parse(argc, argv);
    if (opts.getBool("help")) {
        usage();
        return 0;
    }
    if (!flagsAreKnown(argc, argv)) {
        usage();
        return 1;
    }

    try {
        const SweepSpec spec = loadSpec(opts.getString("spec", "paper"));

        SweepOptions options;
        options.jobs = static_cast<unsigned>(opts.getInt(
            "jobs", static_cast<std::int64_t>(ThreadPool::defaultWorkers())));
        options.outDir = opts.getString("out", "");
        options.scale =
            static_cast<std::uint32_t>(opts.getInt("scale", 0));
        options.perfInline = opts.getBool("perf-inline");

        if (opts.getBool("list")) {
            std::size_t index = 0;
            for (const SweepExperiment& experiment : spec.experiments) {
                for (const SweepPoint& point : experiment.expand()) {
                    std::printf("%4zu %-24s %s\n", index++,
                                experiment.id.c_str(),
                                point.toString().c_str());
                }
            }
            std::printf("%zu tasks\n", index);
            return 0;
        }

        std::printf("== sweep %s: %zu tasks on %u workers ==\n",
                    spec.name.c_str(), spec.totalTasks(),
                    options.jobs == 0 ? ThreadPool::defaultWorkers()
                                      : options.jobs);

        const SweepOutcome outcome = runSweep(spec, options);

        for (const SweepExperiment& experiment : spec.experiments)
            std::printf("  %-24s %zu points\n", experiment.id.c_str(),
                        experiment.pointCount());
        std::printf("tasks: %zu total, %zu failed rows\n",
                    outcome.rows.size(), outcome.failedRows);
        for (const SweepRow& row : outcome.rows) {
            if (row.failed) {
                std::printf("  FAILED task %zu (%s): %s: %s\n",
                            row.taskIndex,
                            spec.experiments[row.experiment].id.c_str(),
                            row.faultKind.c_str(), row.message.c_str());
            }
        }
        std::printf("fingerprint: %016llx\n",
                    static_cast<unsigned long long>(outcome.fingerprint));
        std::printf("throughput: %.1f s wall, %.2f sims/sec, "
                    "speedup vs --jobs=1 (est.): %.2fx on %u workers\n",
                    outcome.wallSeconds,
                    outcome.wallSeconds == 0
                        ? 0.0
                        : static_cast<double>(outcome.rows.size()) /
                              outcome.wallSeconds,
                    outcome.wallSeconds == 0
                        ? 1.0
                        : outcome.taskSecondsSum / outcome.wallSeconds,
                    outcome.jobs);

        if (!writeSweepFiles(spec, outcome, options))
            return 1;
        if (!options.outDir.empty()) {
            std::printf("wrote %s/SWEEP.json (+ perf sidecar, %zu "
                        "BENCH_sweep_*.json)\n",
                        options.outDir.c_str(), spec.experiments.size());
        }
    } catch (const SimFault& fault) {
        std::fprintf(stderr, "pim_sweep: %s\n", fault.what());
        return 1;
    }
    return 0;
}
