/**
 * @file
 * Parallel experiment engine CLI (docs/EXPERIMENTS.md): expands a
 * declarative sweep spec into independent simulation tasks, fans them
 * out across a work-stealing thread pool, and aggregates the rows into
 * one deterministic SWEEP.json (plus per-experiment BENCH_sweep_*.json
 * and a SWEEP.perf.json throughput sidecar).
 *
 * `--spec=paper` reproduces the entire Table 1-5 / Figure 1-3 grid in
 * one invocation; SWEEP.json is byte-identical for any --jobs value,
 * any --timeout/retry history, and any interrupt/--resume split
 * (docs/ROBUSTNESS.md).
 *
 * Exit codes: 0 = every requested task ran (failed rows are results,
 * reported in SWEEP.json); nonzero = a SimFault per
 * simFaultExitCode's families (10 config, 11 parse, ...), e.g. a
 * checkpoint/spec mismatch under --resume exits 10.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/options.h"
#include "common/sim_fault.h"
#include "common/strutil.h"
#include "common/thread_pool.h"
#include "sweep/sweep_runner.h"

using namespace pim;
using namespace pim::sweep;

namespace {

void
usage()
{
    std::printf(
        "pim_sweep: parallel sweep over simulation parameter grids\n"
        "  --spec=FILE|paper|smoke|clusters  sweep spec: a JSON file,\n"
        "                      the built-in full paper grid, the 4-point\n"
        "                      CI smoke, or the 128-1024 PE clustered\n"
        "                      scaling grid (docs/ARCHITECTURE.md)\n"
        "  --jobs=N            worker threads (default: hardware)\n"
        "  --out=DIR           write SWEEP.json, SWEEP.perf.json and\n"
        "                      BENCH_sweep_<id>.json here (created if\n"
        "                      missing; default: no files, stdout only)\n"
        "  --scale=N           override every kl1 task's workload scale\n"
        "  --list              print the expanded grid and exit\n"
        "  --perf-inline       embed the perf block in SWEEP.json (forfeits\n"
        "                      cross---jobs byte-identity)\n"
        "  --timeout=SECS      per-task wall-clock budget; an overrunning\n"
        "                      point fails with Timeout instead of wedging\n"
        "                      its worker (default: none)\n"
        "  --retries=N         extra attempts for transient (Timeout)\n"
        "                      rows, exponential backoff (default: 2)\n"
        "  --retry-base-ms=MS  first retry backoff, doubling per retry\n"
        "                      (default: 100, capped at 5000)\n"
        "  --resume            restore completed slots from\n"
        "                      OUT/SWEEP.ckpt.json (same spec, verified\n"
        "                      by config hash) and run only the rest\n"
        "  --max-tasks=K       stop after K tasks this invocation,\n"
        "                      leaving the checkpoint for --resume\n"
        "                      (default: 0 = run everything)\n"
        "  --checkpoint-every=N  completed tasks between checkpoint\n"
        "                      writes when --out is set (default: 1;\n"
        "                      0 disables periodic checkpoints)\n");
}

const char* const kKnownFlags[] = {
    "spec", "jobs", "out", "scale", "list", "perf-inline", "timeout",
    "retries", "retry-base-ms", "resume", "max-tasks",
    "checkpoint-every", "help",
};

/** Like pim_stress: a mistyped flag must not silently run a default. */
bool
flagsAreKnown(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            continue;
        std::string name(argv[i] + 2);
        name = name.substr(0, name.find('='));
        bool known = false;
        for (const char* flag : kKnownFlags)
            known = known || name == flag;
        if (!known) {
            std::fprintf(stderr, "pim_sweep: unknown option --%s\n",
                         name.c_str());
            return false;
        }
    }
    return true;
}

SweepSpec
loadSpec(const std::string& spec_arg)
{
    if (spec_arg == "paper")
        return SweepSpec::paperGrid();
    if (spec_arg == "smoke")
        return SweepSpec::smokeGrid();
    if (spec_arg == "clusters")
        return SweepSpec::clustersGrid();
    return SweepSpec::parseFile(spec_arg);
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opts = Options::parse(argc, argv);
    if (opts.getBool("help")) {
        usage();
        return 0;
    }
    if (!flagsAreKnown(argc, argv)) {
        usage();
        return 1;
    }

    try {
        const SweepSpec spec = loadSpec(opts.getString("spec", "paper"));

        SweepOptions options;
        options.jobs = static_cast<unsigned>(opts.getInt(
            "jobs", static_cast<std::int64_t>(ThreadPool::defaultWorkers())));
        options.outDir = opts.getString("out", "");
        options.scale =
            static_cast<std::uint32_t>(opts.getInt("scale", 0));
        options.perfInline = opts.getBool("perf-inline");
        options.timeoutSeconds = opts.getDouble("timeout", 0);
        options.retry.retries =
            static_cast<std::uint32_t>(opts.getInt("retries", 2));
        options.retry.backoffBaseMs =
            static_cast<std::uint32_t>(opts.getInt("retry-base-ms", 100));
        options.resume = opts.getBool("resume");
        options.maxTasks =
            static_cast<std::size_t>(opts.getInt("max-tasks", 0));
        options.checkpointEvery =
            static_cast<std::uint32_t>(opts.getInt("checkpoint-every", 1));
        if (options.resume && options.outDir.empty()) {
            std::fprintf(stderr,
                         "pim_sweep: --resume needs --out=DIR (the "
                         "checkpoint lives there)\n");
            return 1;
        }

        if (opts.getBool("list")) {
            std::size_t index = 0;
            for (const SweepExperiment& experiment : spec.experiments) {
                for (const SweepPoint& point : experiment.expand()) {
                    std::printf("%4zu %-24s %s\n", index++,
                                experiment.id.c_str(),
                                point.toString().c_str());
                }
            }
            std::printf("%zu tasks\n", index);
            return 0;
        }

        std::printf("== sweep %s: %zu tasks on %u workers ==\n",
                    spec.name.c_str(), spec.totalTasks(),
                    options.jobs == 0 ? ThreadPool::defaultWorkers()
                                      : options.jobs);

        const SweepOutcome outcome = runSweep(spec, options);

        for (const SweepExperiment& experiment : spec.experiments)
            std::printf("  %-24s %zu points\n", experiment.id.c_str(),
                        experiment.pointCount());
        if (outcome.resumedRows != 0) {
            std::printf("resumed: %zu rows restored from %s\n",
                        outcome.resumedRows, sweepCheckpointName());
        }
        std::printf("tasks: %zu total, %zu completed, %zu failed rows\n",
                    outcome.rows.size(), outcome.completedRows,
                    outcome.failedRows);
        for (const SweepRow& row : outcome.rows) {
            if (row.done && row.failed) {
                std::printf("  FAILED task %zu (%s): %s: %s\n",
                            row.taskIndex,
                            spec.experiments[row.experiment].id.c_str(),
                            row.faultKind.c_str(), row.message.c_str());
            }
        }
        if (outcome.retriedRows != 0) {
            std::printf("retried: %zu rows needed more than one attempt "
                        "(history in SWEEP.perf.json)\n",
                        outcome.retriedRows);
        }
        if (outcome.complete) {
            std::printf("fingerprint: %016llx\n",
                        static_cast<unsigned long long>(
                            outcome.fingerprint));
        }
        std::printf("throughput: %.1f s wall, %.2f sims/sec, "
                    "speedup vs --jobs=1 (est.): %.2fx on %u workers\n",
                    outcome.wallSeconds,
                    outcome.wallSeconds == 0
                        ? 0.0
                        : static_cast<double>(outcome.rows.size()) /
                              outcome.wallSeconds,
                    outcome.wallSeconds == 0
                        ? 1.0
                        : outcome.taskSecondsSum / outcome.wallSeconds,
                    outcome.jobs);

        if (!writeSweepFiles(spec, outcome, options))
            return 1;
        if (!options.outDir.empty()) {
            if (outcome.complete) {
                std::printf("wrote %s/SWEEP.json (+ perf sidecar, %zu "
                            "BENCH_sweep_*.json)\n",
                            options.outDir.c_str(),
                            spec.experiments.size());
            } else {
                std::printf("partial run (%zu/%zu tasks): checkpoint "
                            "left in %s/%s; finish with --resume\n",
                            outcome.completedRows, outcome.rows.size(),
                            options.outDir.c_str(), sweepCheckpointName());
            }
        }
    } catch (const SimFault& fault) {
        std::fprintf(stderr, "pim_sweep: error: kind=%s exit=%d %s\n",
                     simFaultKindName(fault.kind()),
                     simFaultExitCode(fault.kind()), fault.what());
        return simFaultExitCode(fault.kind());
    }
    return 0;
}
