/**
 * @file
 * Protocol conformance engine CLI (docs/TESTING.md, ctest label
 * `conform`).
 *
 * Modes:
 *  - exhaustive exploration (default): BFS over all interleavings of
 *    the bounded command alphabet for a small configuration, with the
 *    full differential + invariant check battery on every edge.
 *      pim_conform --pes=2 --blocks=1 --depth=8
 *  - differential fuzzing: seeded random long traces, shrunk to a
 *    minimal reproducer on divergence.
 *      pim_conform --fuzz --seed=7 --traces=50 --len=300
 *  - replay: run a shrunk reproducer script back under full checking.
 *      pim_conform --replay='P0:W@0=1;P1:R@0'
 *
 * --protocol=NAME selects the coherence-protocol variant under test
 * (see --list-protocols; default pim) and --replacement=NAME the
 * replacement policy (lru, fifo, random) — the zoo's conformance axis.
 *
 * --mutate=NAME arms one seeded protocol bug (see --list-mutations);
 * with --expect-divergence the exit code inverts, so the conformance
 * ctest suite proves the engine catches every mutation — and prints the
 * shrunk reproducer it found. --max-shrunk=N additionally fails if the
 * reproducer needs more than N commands.
 */

#include <cstdio>
#include <string>

#include "common/options.h"
#include "common/sim_fault.h"
#include "model/explorer.h"
#include "model/fuzzer.h"

using namespace pim;

namespace {

HarnessConfig
harnessFromOptions(const Options& opt)
{
    HarnessConfig config;
    config.numPes = static_cast<std::uint32_t>(opt.getInt("pes", 2));
    config.blocks = static_cast<std::uint32_t>(opt.getInt("blocks", 1));
    config.blockWords =
        static_cast<std::uint32_t>(opt.getInt("block-words", 2));
    config.ways = static_cast<std::uint32_t>(opt.getInt("ways", 1));
    config.sets = static_cast<std::uint32_t>(opt.getInt("sets", 1));
    config.lockEntries =
        static_cast<std::uint32_t>(opt.getInt("lock-entries", 2));
    config.snoopFilter = !opt.getBool("no-snoop-filter");
    config.clusterSize =
        static_cast<std::uint32_t>(opt.getInt("cluster-size", 0));
    config.hopCycles =
        static_cast<std::uint32_t>(opt.getInt("hop-cycles", 4));
    const std::string mutate = opt.getString("mutate", "none");
    if (!parseProtocolMutation(mutate, &config.mutation)) {
        std::fprintf(stderr,
                     "pim_conform: unknown mutation '%s' "
                     "(see --list-mutations)\n",
                     mutate.c_str());
        std::exit(2);
    }
    const std::string protocol = opt.getString("protocol", "pim");
    if (!parseProtocolKind(protocol, &config.protocol)) {
        std::fprintf(stderr,
                     "pim_conform: unknown protocol '%s' "
                     "(see --list-protocols)\n",
                     protocol.c_str());
        std::exit(2);
    }
    const std::string replacement = opt.getString("replacement", "lru");
    if (!parseReplacementKind(replacement, &config.replacement)) {
        std::fprintf(stderr,
                     "pim_conform: unknown replacement policy '%s' "
                     "(lru, fifo, random)\n",
                     replacement.c_str());
        std::exit(2);
    }
    return config;
}

void
printDivergence(const std::string& message,
                const std::vector<ProtoCmd>& trace)
{
    std::printf("DIVERGENCE: %s\n", message.c_str());
    std::printf("trace (%zu commands):\n", trace.size());
    for (const ProtoCmd& cmd : trace)
        std::printf("  %s\n", cmdToString(cmd).c_str());
    std::printf("replay: pim_conform --replay='%s'\n",
                traceToString(trace).c_str());
}

/** Exit code honoring --expect-divergence and --max-shrunk. */
int
verdict(const Options& opt, bool diverged, std::size_t shrunk_len)
{
    const bool expect = opt.getBool("expect-divergence");
    if (expect && !diverged) {
        std::printf("FAIL: expected a divergence, found none\n");
        return 1;
    }
    if (!expect && diverged)
        return 1;
    if (expect && opt.has("max-shrunk")) {
        const std::size_t cap =
            static_cast<std::size_t>(opt.getInt("max-shrunk", 0));
        if (shrunk_len > cap) {
            std::printf("FAIL: shrunk reproducer has %zu commands, "
                        "cap is %zu\n",
                        shrunk_len, cap);
            return 1;
        }
    }
    std::printf("OK\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opt = Options::parse(argc, argv);

    if (opt.getBool("list-mutations")) {
        for (int i = 1; i < kNumProtocolMutations; ++i) {
            std::printf("%s\n", protocolMutationName(
                                    static_cast<ProtocolMutation>(i)));
        }
        return 0;
    }

    if (opt.getBool("list-protocols")) {
        for (int i = 0; i < kNumProtocolKinds; ++i) {
            std::printf("%s\n",
                        protocolKindName(static_cast<ProtocolKind>(i)));
        }
        return 0;
    }

    const HarnessConfig harness = harnessFromOptions(opt);

    try {
        if (opt.has("replay")) {
            const std::vector<ProtoCmd> trace =
                parseTrace(opt.getString("replay"));
            ConformanceHarness replayer(harness);
            bool diverged = false;
            std::string message;
            std::size_t executed = 0;
            try {
                executed = replayer.replayLenient(trace);
            } catch (const SimFault& fault) {
                diverged = true;
                message = fault.message();
                executed = static_cast<std::size_t>(replayer.checksRun());
            }
            std::printf("replayed %zu of %zu commands, %llu check "
                        "groups\n",
                        executed, trace.size(),
                        static_cast<unsigned long long>(
                            replayer.checksRun()));
            if (diverged)
                printDivergence(message, trace);
            return verdict(opt, diverged, trace.size());
        }

        if (opt.getBool("fuzz")) {
            FuzzConfig config;
            config.harness = harness;
            config.seed = static_cast<std::uint64_t>(opt.getInt("seed", 1));
            config.traces =
                static_cast<std::uint32_t>(opt.getInt("traces", 20));
            config.len = static_cast<std::uint32_t>(opt.getInt("len", 200));
            config.shrink = !opt.getBool("no-shrink");
            const FuzzResult result = fuzz(config);
            std::printf("fuzz: %llu traces, %llu commands, protocol=%s, "
                        "mutation=%s\n",
                        static_cast<unsigned long long>(result.tracesRun),
                        static_cast<unsigned long long>(result.commandsRun),
                        protocolKindName(harness.protocol),
                        protocolMutationName(harness.mutation));
            if (result.divergence) {
                std::printf("failing seed: %llu\n",
                            static_cast<unsigned long long>(
                                result.failingSeed));
                printDivergence(result.shrunkMessage.empty()
                                    ? result.divergenceMessage
                                    : result.shrunkMessage,
                                result.shrunk);
            }
            return verdict(opt, result.divergence, result.shrunk.size());
        }

        ExploreConfig config;
        config.harness = harness;
        config.depth = static_cast<std::uint32_t>(opt.getInt("depth", 8));
        config.maxStates = static_cast<std::uint64_t>(
            opt.getInt("max-states", 500000));
        const ExploreResult result = explore(config);
        std::printf("explore: %llu states, %llu edges, %llu step checks, "
                    "depth=%u, protocol=%s, mutation=%s%s\n",
                    static_cast<unsigned long long>(result.states),
                    static_cast<unsigned long long>(result.edges),
                    static_cast<unsigned long long>(result.checks),
                    config.depth, protocolKindName(harness.protocol),
                    protocolMutationName(harness.mutation),
                    result.truncated ? " (truncated by --max-states)" : "");
        if (result.divergence)
            printDivergence(result.divergenceMessage,
                            result.divergenceTrace);
        return verdict(opt, result.divergence,
                       result.divergenceTrace.size());
    } catch (const SimFault& fault) {
        std::fprintf(stderr, "pim_conform: error: kind=%s exit=%d %s\n",
                     simFaultKindName(fault.kind()),
                     simFaultExitCode(fault.kind()), fault.what());
        return simFaultExitCode(fault.kind());
    }
}
