/**
 * @file
 * Protocol conformance engine CLI (docs/TESTING.md, ctest label
 * `conform`).
 *
 * Modes:
 *  - exhaustive exploration (default): BFS over all interleavings of
 *    the bounded command alphabet for a small configuration, with the
 *    full differential + invariant check battery on every edge.
 *      pim_conform --pes=2 --blocks=1 --depth=8
 *  - differential fuzzing: seeded random long traces, shrunk to a
 *    minimal reproducer on divergence.
 *      pim_conform --fuzz --seed=7 --traces=50 --len=300
 *  - replay: run a shrunk reproducer script back under full checking.
 *      pim_conform --replay='P0:W@0=1;P1:R@0'
 *  - parallel-core differential fuzzing: seeded random workload shapes
 *    (lock and optimized-command mixes, clustered topologies,
 *    write-through, snoop-filter off) run once sequentially and once on
 *    the concurrent core with a random jobs count, comparing every
 *    observable — fingerprint, makespan, bus transactions and cycles,
 *    inter-cluster cycles, protocol hash and the full protocol
 *    snapshot. Each trace reproduces alone via its printed seed.
 *      pim_conform --par-fuzz --seed=7 --traces=24
 *
 * --protocol=NAME selects the coherence-protocol variant under test
 * (see --list-protocols; default pim) and --replacement=NAME the
 * replacement policy (lru, fifo, random) — the zoo's conformance axis.
 *
 * --mutate=NAME arms one seeded protocol bug (see --list-mutations);
 * with --expect-divergence the exit code inverts, so the conformance
 * ctest suite proves the engine catches every mutation — and prints the
 * shrunk reproducer it found. --max-shrunk=N additionally fails if the
 * reproducer needs more than N commands.
 */

#include <cstdio>
#include <string>

#include "common/options.h"
#include "common/rng.h"
#include "common/sim_fault.h"
#include "model/explorer.h"
#include "model/fuzzer.h"
#include "sim/par_workload.h"
#include "sim/parallel_core.h"
#include "sim/system.h"

using namespace pim;

namespace {

HarnessConfig
harnessFromOptions(const Options& opt)
{
    HarnessConfig config;
    config.numPes = static_cast<std::uint32_t>(opt.getInt("pes", 2));
    config.blocks = static_cast<std::uint32_t>(opt.getInt("blocks", 1));
    config.blockWords =
        static_cast<std::uint32_t>(opt.getInt("block-words", 2));
    config.ways = static_cast<std::uint32_t>(opt.getInt("ways", 1));
    config.sets = static_cast<std::uint32_t>(opt.getInt("sets", 1));
    config.lockEntries =
        static_cast<std::uint32_t>(opt.getInt("lock-entries", 2));
    config.snoopFilter = !opt.getBool("no-snoop-filter");
    config.clusterSize =
        static_cast<std::uint32_t>(opt.getInt("cluster-size", 0));
    config.hopCycles =
        static_cast<std::uint32_t>(opt.getInt("hop-cycles", 4));
    const std::string mutate = opt.getString("mutate", "none");
    if (!parseProtocolMutation(mutate, &config.mutation)) {
        std::fprintf(stderr,
                     "pim_conform: unknown mutation '%s' "
                     "(see --list-mutations)\n",
                     mutate.c_str());
        std::exit(2);
    }
    const std::string protocol = opt.getString("protocol", "pim");
    if (!parseProtocolKind(protocol, &config.protocol)) {
        std::fprintf(stderr,
                     "pim_conform: unknown protocol '%s' "
                     "(see --list-protocols)\n",
                     protocol.c_str());
        std::exit(2);
    }
    const std::string replacement = opt.getString("replacement", "lru");
    if (!parseReplacementKind(replacement, &config.replacement)) {
        std::fprintf(stderr,
                     "pim_conform: unknown replacement policy '%s' "
                     "(lru, fifo, random)\n",
                     replacement.c_str());
        std::exit(2);
    }
    return config;
}

void
printDivergence(const std::string& message,
                const std::vector<ProtoCmd>& trace)
{
    std::printf("DIVERGENCE: %s\n", message.c_str());
    std::printf("trace (%zu commands):\n", trace.size());
    for (const ProtoCmd& cmd : trace)
        std::printf("  %s\n", cmdToString(cmd).c_str());
    std::printf("replay: pim_conform --replay='%s'\n",
                traceToString(trace).c_str());
}

/** Exit code honoring --expect-divergence and --max-shrunk. */
int
verdict(const Options& opt, bool diverged, std::size_t shrunk_len)
{
    const bool expect = opt.getBool("expect-divergence");
    if (expect && !diverged) {
        std::printf("FAIL: expected a divergence, found none\n");
        return 1;
    }
    if (!expect && diverged)
        return 1;
    if (expect && opt.has("max-shrunk")) {
        const std::size_t cap =
            static_cast<std::size_t>(opt.getInt("max-shrunk", 0));
        if (shrunk_len > cap) {
            std::printf("FAIL: shrunk reproducer has %zu commands, "
                        "cap is %zu\n",
                        shrunk_len, cap);
            return 1;
        }
    }
    std::printf("OK\n");
    return 0;
}

// ---------------------------------------------------------------------
// --par-fuzz: parallel-core jobs-invariance differential fuzzing
// ---------------------------------------------------------------------

/** Every observable the sequential and concurrent cores must agree on. */
struct ParObservables {
    std::uint64_t fingerprint = 0;
    Cycles makespan = 0;
    std::uint64_t busTransactions = 0;
    Cycles busCycles = 0;
    Cycles interClusterCycles = 0;
    std::uint64_t protocolHash = 0;
    std::uint64_t refTotal = 0;
    std::vector<std::uint64_t> snapshot;

    bool
    operator==(const ParObservables& o) const
    {
        return fingerprint == o.fingerprint && makespan == o.makespan &&
               busTransactions == o.busTransactions &&
               busCycles == o.busCycles &&
               interClusterCycles == o.interClusterCycles &&
               protocolHash == o.protocolHash && refTotal == o.refTotal &&
               snapshot == o.snapshot;
    }
};

ParObservables
runParTrace(const ParShape& shape, SystemConfig config, unsigned jobs,
            ParallelRunResult* result_out)
{
    ParWorkloadSource source(shape, config.numPes,
                             config.cache.geometry.blockWords);
    config.memoryWords = source.memoryWords();
    System system(config);
    ParallelCoreOptions options;
    options.jobs = jobs;
    const ParallelRunResult result =
        runParallelCore(system, source, options);
    if (result_out != nullptr)
        *result_out = result;

    ParObservables obs;
    obs.fingerprint = result.fingerprint;
    obs.makespan = system.makespan();
    for (int p = 0; p < kNumBusPatterns; ++p)
        obs.busTransactions += system.bus().stats().transByPattern[p];
    obs.busCycles = system.bus().stats().totalCycles;
    obs.interClusterCycles = system.bus().stats().interClusterCycles;
    obs.protocolHash = system.protocolHash(0, config.memoryWords);
    obs.refTotal = system.refStats().total();
    obs.snapshot = system.protocolSnapshot(0, config.memoryWords);
    return obs;
}

/**
 * Seeded random shape x jobs differential fuzz. Trace @c i draws from
 * its own Rng(seed + i), so any divergence reproduces alone with
 * `--par-fuzz --seed=<seed+i> --traces=1`.
 */
int
parFuzzMain(const Options& opt)
{
    const auto seed = static_cast<std::uint64_t>(opt.getInt("seed", 1));
    const auto traces =
        static_cast<std::uint32_t>(opt.getInt("traces", 24));
    const unsigned pinned_jobs =
        static_cast<unsigned>(opt.getInt("jobs", 0));

    std::uint64_t refs = 0;
    std::uint32_t concurrent = 0;
    for (std::uint32_t i = 0; i < traces; ++i) {
        Rng rng(seed + i);
        ParShape shape;
        shape.stepsPerPe = 200 + rng.below(600);
        shape.sharedWords = 64u << rng.below(4);
        shape.privateWords = 256u << rng.below(3);
        shape.sharedPct = rng.below(30);
        shape.writePct = rng.below(100);
        shape.lockPct = rng.chance(1, 2) ? rng.below(30) : 0;
        shape.optPct = rng.chance(1, 2) ? rng.below(40) : 0;
        shape.seed = rng.next();

        SystemConfig config;
        config.numPes = 2 + rng.below(7);
        if (rng.chance(1, 3)) {
            config.cluster.clusterSize = 2;
            config.cluster.hopCycles = 1 + rng.below(6);
        }
        if (rng.chance(1, 4))
            config.cache.writeThrough = true;
        if (rng.chance(1, 3))
            config.snoopFilter = false;
        const unsigned jobs =
            pinned_jobs != 0 ? pinned_jobs : 2 + rng.below(7);

        ParallelRunResult seq_result;
        const ParObservables seq =
            runParTrace(shape, config, 1, &seq_result);
        ParallelRunResult par_result;
        const ParObservables par =
            runParTrace(shape, config, jobs, &par_result);
        refs += seq_result.completedRefs;
        if (!par_result.serialized)
            ++concurrent;

        if (!(par == seq) ||
            par_result.completedRefs != seq_result.completedRefs) {
            std::printf(
                "DIVERGENCE: trace %u (seed %llu), %u PEs, jobs=%u\n"
                "  seq: fp=%016llx makespan=%llu bus=%llu proto=%016llx\n"
                "  par: fp=%016llx makespan=%llu bus=%llu proto=%016llx\n"
                "replay: pim_conform --par-fuzz --seed=%llu --traces=1 "
                "--jobs=%u\n",
                i, static_cast<unsigned long long>(seed + i),
                config.numPes, jobs,
                static_cast<unsigned long long>(seq.fingerprint),
                static_cast<unsigned long long>(seq.makespan),
                static_cast<unsigned long long>(seq.busTransactions),
                static_cast<unsigned long long>(seq.protocolHash),
                static_cast<unsigned long long>(par.fingerprint),
                static_cast<unsigned long long>(par.makespan),
                static_cast<unsigned long long>(par.busTransactions),
                static_cast<unsigned long long>(par.protocolHash),
                static_cast<unsigned long long>(seed + i), jobs);
            return 1;
        }
    }
    std::printf("par-fuzz: %u traces, %llu refs, %u concurrent-core "
                "runs, all observables jobs-invariant\nOK\n",
                traces, static_cast<unsigned long long>(refs),
                concurrent);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opt = Options::parse(argc, argv);

    if (opt.getBool("list-mutations")) {
        for (int i = 1; i < kNumProtocolMutations; ++i) {
            std::printf("%s\n", protocolMutationName(
                                    static_cast<ProtocolMutation>(i)));
        }
        return 0;
    }

    if (opt.getBool("list-protocols")) {
        for (int i = 0; i < kNumProtocolKinds; ++i) {
            std::printf("%s\n",
                        protocolKindName(static_cast<ProtocolKind>(i)));
        }
        return 0;
    }

    if (opt.getBool("par-fuzz")) {
        try {
            return parFuzzMain(opt);
        } catch (const SimFault& fault) {
            std::fprintf(stderr,
                         "pim_conform: error: kind=%s exit=%d %s\n",
                         simFaultKindName(fault.kind()),
                         simFaultExitCode(fault.kind()), fault.what());
            return simFaultExitCode(fault.kind());
        }
    }

    const HarnessConfig harness = harnessFromOptions(opt);

    try {
        if (opt.has("replay")) {
            const std::vector<ProtoCmd> trace =
                parseTrace(opt.getString("replay"));
            ConformanceHarness replayer(harness);
            bool diverged = false;
            std::string message;
            std::size_t executed = 0;
            try {
                executed = replayer.replayLenient(trace);
            } catch (const SimFault& fault) {
                diverged = true;
                message = fault.message();
                executed = static_cast<std::size_t>(replayer.checksRun());
            }
            std::printf("replayed %zu of %zu commands, %llu check "
                        "groups\n",
                        executed, trace.size(),
                        static_cast<unsigned long long>(
                            replayer.checksRun()));
            if (diverged)
                printDivergence(message, trace);
            return verdict(opt, diverged, trace.size());
        }

        if (opt.getBool("fuzz")) {
            FuzzConfig config;
            config.harness = harness;
            config.seed = static_cast<std::uint64_t>(opt.getInt("seed", 1));
            config.traces =
                static_cast<std::uint32_t>(opt.getInt("traces", 20));
            config.len = static_cast<std::uint32_t>(opt.getInt("len", 200));
            config.shrink = !opt.getBool("no-shrink");
            const FuzzResult result = fuzz(config);
            std::printf("fuzz: %llu traces, %llu commands, protocol=%s, "
                        "mutation=%s\n",
                        static_cast<unsigned long long>(result.tracesRun),
                        static_cast<unsigned long long>(result.commandsRun),
                        protocolKindName(harness.protocol),
                        protocolMutationName(harness.mutation));
            if (result.divergence) {
                std::printf("failing seed: %llu\n",
                            static_cast<unsigned long long>(
                                result.failingSeed));
                printDivergence(result.shrunkMessage.empty()
                                    ? result.divergenceMessage
                                    : result.shrunkMessage,
                                result.shrunk);
            }
            return verdict(opt, result.divergence, result.shrunk.size());
        }

        ExploreConfig config;
        config.harness = harness;
        config.depth = static_cast<std::uint32_t>(opt.getInt("depth", 8));
        config.maxStates = static_cast<std::uint64_t>(
            opt.getInt("max-states", 500000));
        const ExploreResult result = explore(config);
        std::printf("explore: %llu states, %llu edges, %llu step checks, "
                    "depth=%u, protocol=%s, mutation=%s%s\n",
                    static_cast<unsigned long long>(result.states),
                    static_cast<unsigned long long>(result.edges),
                    static_cast<unsigned long long>(result.checks),
                    config.depth, protocolKindName(harness.protocol),
                    protocolMutationName(harness.mutation),
                    result.truncated ? " (truncated by --max-states)" : "");
        if (result.divergence)
            printDivergence(result.divergenceMessage,
                            result.divergenceTrace);
        return verdict(opt, result.divergence,
                       result.divergenceTrace.size());
    } catch (const SimFault& fault) {
        std::fprintf(stderr, "pim_conform: error: kind=%s exit=%d %s\n",
                     simFaultKindName(fault.kind()),
                     simFaultExitCode(fault.kind()), fault.what());
        return simFaultExitCode(fault.kind());
    }
}
