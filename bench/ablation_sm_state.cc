/**
 * @file
 * Ablation: the SM (shared-modified) state. The PIM protocol transfers
 * dirty blocks cache-to-cache without updating shared memory; the
 * Illinois-style baseline copies dirty blocks back on every transfer
 * (no SM state). The paper's argument (Section 3.1): with KL1's high
 * cache-to-cache rate, copy-back-on-share keeps the memory modules busy.
 *
 * Reported: common-bus cycles, shared-memory busy cycles, memory writes
 * and swap-outs for both protocols, on the four benchmarks and on a
 * synthetic migratory-sharing pattern (the worst case for Illinois).
 */

#include "bench_util.h"
#include "sim/trace_replay.h"
#include "trace/synth.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Ablation: SM state (PIM) vs copy-back-on-share (Illinois)",
           ctx);
    BenchJson json(ctx, "ablation_sm_state");

    Table table("measured");
    table.setHeader({"benchmark", "protocol", "bus cycles", "mem busy",
                     "mem writes", "swap-outs"});
    for (const BenchProgram& bench : allBenchmarks()) {
        for (const bool illinois : {false, true}) {
            Kl1Config config = paperConfig(ctx.pes);
            config.cache.copybackOnShare = illinois;
            const BenchResult r = runBenchmark(bench, ctx.scale, config);
            table.addRow({bench.name, illinois ? "Illinois" : "PIM",
                          fmtEng(static_cast<double>(r.bus.totalCycles),
                                 2),
                          fmtEng(static_cast<double>(
                                     r.bus.memoryBusyCycles), 2),
                          fmtCount(r.bus.memoryWrites),
                          fmtCount(r.cache.swapOuts)});

            json.row();
            json.set("bench", bench.name);
            json.set("protocol", illinois ? "Illinois" : "PIM");
            json.set("measured_bus_cycles",
                     static_cast<std::uint64_t>(r.bus.totalCycles));
            json.set("measured_mem_busy_cycles",
                     static_cast<std::uint64_t>(r.bus.memoryBusyCycles));
            json.set("measured_mem_writes", r.bus.memoryWrites);
            json.set("measured_swap_outs", r.cache.swapOuts);
        }
        table.addRule();
    }

    // Synthetic migratory sharing: blocks read-modified-written by each
    // PE in turn — every transfer moves a dirty block.
    const std::uint64_t rounds = 200ull * ctx.scale;
    const auto trace = makeMigratory(ctx.pes, 0, 64, 4,
                                     static_cast<std::uint32_t>(rounds));
    for (const bool illinois : {false, true}) {
        SystemConfig config;
        config.numPes = ctx.pes;
        config.cache.geometry = {4, 4, 256};
        config.cache.copybackOnShare = illinois;
        config.memoryWords = 1 << 20;
        System sys(config);
        TraceReplay(sys, trace).run();
        CacheStats cache = sys.totalCacheStats();
        table.addRow({"migratory", illinois ? "Illinois" : "PIM",
                      fmtEng(static_cast<double>(
                                 sys.bus().stats().totalCycles), 2),
                      fmtEng(static_cast<double>(
                                 sys.bus().stats().memoryBusyCycles), 2),
                      fmtCount(sys.bus().stats().memoryWrites),
                      fmtCount(cache.swapOuts)});

        json.row();
        json.set("bench", "migratory");
        json.set("protocol", illinois ? "Illinois" : "PIM");
        json.set("measured_bus_cycles",
                 static_cast<std::uint64_t>(sys.bus().stats().totalCycles));
        json.set("measured_mem_busy_cycles",
                 static_cast<std::uint64_t>(
                     sys.bus().stats().memoryBusyCycles));
        json.set("measured_mem_writes", sys.bus().stats().memoryWrites);
        json.set("measured_swap_outs", cache.swapOuts);
    }
    json.write();
    table.print(std::cout);

    std::printf(
        "\nShape checks: equal-ish bus cycles (the copy-back is snarfed"
        "\noff the same transfer), but the Illinois baseline keeps the"
        "\nshared-memory modules substantially busier (more memory"
        "\nwrites); PIM defers dirty data to explicit swap-outs. On the"
        "\nmigratory pattern every transfer is dirty, so the gap is"
        "\nlargest there — the paper's reason for adding SM.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "ablation_sm_state", [&] { return pim::kl1::bench::run(argc, argv); });
}
