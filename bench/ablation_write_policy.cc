/**
 * @file
 * Ablation: copy-back vs write-through. The paper's Section 3 premise
 * (after Goodman [5] and Tick [19]): logic programming languages write
 * so frequently — 36% of KL1 data references, Table 3 — that a
 * write-through cache floods the bus, and copy-back is the only viable
 * base protocol.
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Ablation: copy-back vs write-through", ctx);
    BenchJson json(ctx, "ablation_write_policy");

    Table table("measured");
    table.setHeader({"benchmark", "protocol", "bus cycles", "rel.",
                     "mem writes", "makespan"});
    for (const BenchProgram& bench : allBenchmarks()) {
        double base = 0;
        for (const bool wt : {false, true}) {
            Kl1Config config = paperConfig(ctx.pes);
            config.cache.writeThrough = wt;
            const BenchResult r = runBenchmark(bench, ctx.scale, config);
            const double cycles =
                static_cast<double>(r.bus.totalCycles);
            if (!wt)
                base = cycles;
            table.addRow({bench.name,
                          wt ? "write-through" : "copy-back (PIM)",
                          fmtEng(cycles, 2), fmtFixed(cycles / base, 2),
                          fmtCount(r.bus.memoryWrites),
                          fmtEng(static_cast<double>(r.run.makespan),
                                 2)});

            json.row();
            json.set("bench", bench.name);
            json.set("protocol", wt ? "write-through" : "copy-back");
            json.set("measured_bus_cycles",
                     static_cast<std::uint64_t>(r.bus.totalCycles));
            json.set("measured_bus_rel", cycles / base);
            json.set("measured_mem_writes", r.bus.memoryWrites);
            json.set("measured_makespan",
                     static_cast<std::uint64_t>(r.run.makespan));
        }
        table.addRule();
    }
    json.write();
    table.print(std::cout);

    std::printf(
        "\nShape checks: write-through multiplies bus cycles several-fold"
        "\non every benchmark (each of the ~25-38%% data writes becomes a"
        "\nbus transaction) and stretches the makespan accordingly —"
        "\nwhy the PIM cache is copy-back (paper Section 3, after"
        "\nGoodman and Tick).\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "ablation_write_policy", [&] { return pim::kl1::bench::run(argc, argv); });
}
