/**
 * @file
 * Simulator-throughput harness for the exact bus-side snoop filter
 * (docs/PERFORMANCE.md, ctest label `perf`).
 *
 * Unlike the table/figure binaries this does not reproduce a paper
 * number: it measures the *simulator's* hot path. For each PE count it
 * drives the identical randomized workload twice — once with the
 * residency filter disabled (the legacy broadcast-snoop walk over every
 * port) and once with it enabled — and reports wall-clock refs/sec,
 * simulated cycles/ref and the filtered-vs-unfiltered speedup.
 *
 * The filter is exact, so both runs must be observationally identical;
 * the harness enforces this by comparing the workload fingerprint, the
 * simulated makespan, the bus transaction count and the protocol hash
 * of the shared span, and exits 1 on any mismatch.
 *
 * The driver is deliberately lean (no auditor, watchdog, event sinks or
 * ref tracing) so the measurement isolates System::access + Bus rather
 * than the observability stack. Lock traffic holds at most one lock per
 * PE, which cannot deadlock (no hold-and-wait).
 *
 *   pim_perf [--pes=N] [--scale=N] [--reps=N] [--smoke]
 *            [--cluster-size=N] [--hop-cycles=N]
 *            [--min-speedup=X] [--json=PATH] [--attribution-out=PATH]
 *            [--par-jobs=N] [--min-par-speedup=X] [--min-par-local-frac=X]
 *
 * --cluster-size=N partitions the PEs into per-cluster snooping buses
 * with an inter-cluster directory (docs/ARCHITECTURE.md); 0 keeps the
 * paper's single bus. Routing is driven by the directory, never the
 * filter, so the filter on/off exactness gate holds under clustering
 * too — the A/B comparison measures the same machine either way.
 *
 * --attribution-out=PATH adds one extra *untimed* run at the largest PE
 * point with the attribution engine attached and writes its miss/cycle
 * report there (schema `attribution`); the timed points stay bare.
 *
 * --min-speedup=X fails (exit 1) if the largest PE point's speedup is
 * below X. --smoke shrinks the grid for CI, where wall-clock ratios on
 * loaded machines are noise — it checks the exactness invariants and the
 * JSON schema, not the speedup.
 *
 * --par-jobs=N adds the parallel discrete-event core section
 * (docs/ARCHITECTURE.md "Threading model"): per PE point it drives the
 * same independent-stream workload twice — on the serialized core
 * (jobs=1) and on the concurrent core with N worker threads — and
 * reports refs/sec for both, the parallel speedup, and the local
 * fraction (the share of references the concurrent path executed
 * between bus epochs — the machine-independent parallelism metric).
 * Determinism gate: fingerprint, makespan, bus transactions and
 * protocol hash must be byte-identical between the two runs; any
 * mismatch exits 1. --min-par-speedup=X gates the largest point's
 * wall-clock speedup (meaningless on single-core CI hosts);
 * --min-par-local-frac=X gates the deterministic local fraction
 * instead, which holds on any host.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bus/bus.h"
#include "common/rng.h"
#include "common/table.h"
#include "obs/attribution.h"
#include "sim/par_workload.h"
#include "sim/parallel_core.h"
#include "sim/system.h"

using namespace pim;
using namespace pim::kl1::bench;

namespace {

/** Fingerprint mixer (splitmix64 finalizer over a running hash). */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Multiply-shift uniform draw in [0, n) — the driver sits on the same
 * hot path it measures, so it avoids Rng::below's rejection loop and
 * modulo (the tiny bias is irrelevant for workload generation).
 */
std::uint64_t
draw(Rng& rng, std::uint64_t n)
{
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(rng.next()) * n) >> 64);
}

/** One timed run's observables. */
struct Measurement {
    double seconds = 0;            ///< Best wall time over the reps.
    std::uint64_t fingerprint = 0; ///< Op/addr/data stream hash.
    std::uint64_t makespan = 0;    ///< Simulated cycles (max PE clock).
    std::uint64_t busTrans = 0;    ///< Bus transactions issued.
    std::uint64_t protoHash = 0;   ///< Protocol hash of the shared span.
    std::uint64_t interCluster = 0; ///< Inter-cluster hop cycles paid.
};

/**
 * Workload shape: bus-heavy so the per-port snoop walk dominates. The
 * defaults are the filter's showcase, not its worst case: a span far
 * larger than the 4K-word caches (high miss rate, so most references
 * reach the bus), write-heavy traffic (every write hit in shared state
 * broadcasts an invalidate), and no locks — lock words are cached by
 * every contender, so their residency masks are dense and a filtered
 * walk visits nearly as many ports as a broadcast. The lock path stays
 * exercised via --lock-pct (and by the stress/conformance suites).
 */
struct Shape {
    Addr spanWords = 32768; ///< >> cache capacity: high miss rate.
    std::uint32_t writePct = 70;
    std::uint32_t lockPct = 0;
    std::uint32_t optPct = 30; ///< DW -> ER/RP share.
};

/**
 * Drive @p steps random references over @p pes PEs with the snoop
 * filter on or off, repeated @p reps times; keeps the fastest wall
 * time. Every rep is the same pure function of the seed, so the
 * non-timing observables are identical across reps.
 *
 * When @p attr_out is non-null an AttributionEngine rides along (and is
 * returned through it, with the final BusStats in @p stats_out). Only
 * the dedicated --attribution-out run uses this: the timed A/B points
 * always run bare so the sink never pollutes the measurement. Callers
 * pass reps=1 there — the engine accumulates across reps otherwise.
 */
Measurement
runWorkload(std::uint32_t pes, std::uint64_t steps, bool filter,
            std::uint32_t reps, std::uint64_t seed, const Shape& shape,
            const ClusterConfig& cluster = ClusterConfig{},
            std::unique_ptr<AttributionEngine>* attr_out = nullptr,
            BusStats* stats_out = nullptr)
{
    Measurement m;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        SystemConfig sys_config;
        sys_config.numPes = pes;
        sys_config.snoopFilter = filter;
        sys_config.cluster = cluster;
        const std::uint64_t block = sys_config.cache.geometry.blockWords;
        const Addr lock_base = shape.spanWords;
        const std::uint32_t lock_words = std::max<std::uint32_t>(1, pes / 2);
        const Addr rec_base =
            (lock_base + lock_words + block - 1) / block * block;
        sys_config.memoryWords =
            (rec_base + (steps + 2) * block + block - 1) / block * block;
        sys_config.validate();
        System system(sys_config);
        if (attr_out != nullptr) {
            const auto& geom = sys_config.cache.geometry;
            *attr_out = std::make_unique<AttributionEngine>(
                pes, sys_config.timing, geom.blockWords,
                geom.ways * geom.sets);
            system.addEventSink(attr_out->get());
        }

        struct PeState {
            bool hasRetry = false;
            MemOp retryOp = MemOp::R;
            Addr retryAddr = 0;
            Word retryData = 0;
            Addr heldLock = 0;
            bool holdsLock = false;
        };
        std::vector<PeState> state(pes);
        std::vector<Addr> records;
        Addr next_record = rec_base;
        std::uint64_t fingerprint = 0;
        Rng rng(seed);

        const auto start = std::chrono::steady_clock::now();
        std::uint64_t completed = 0;
        while (completed < steps) {
            const PeId pe = system.earliestRunnable();
            PeState& st = state[pe];
            MemOp op;
            Addr addr;
            Word wdata = 0;
            if (st.hasRetry) {
                op = st.retryOp;
                addr = st.retryAddr;
                wdata = st.retryData;
            } else {
                const std::uint64_t roll = draw(rng, 100);
                if (roll < shape.lockPct) {
                    // Hold-at-most-one discipline: a holder always
                    // releases before acquiring again, so lock traffic
                    // can never close a busy-wait cycle.
                    if (st.holdsLock) {
                        addr = st.heldLock;
                        if ((rng.next() & 1) != 0) {
                            op = MemOp::UW;
                            wdata = rng.next();
                        } else {
                            op = MemOp::U;
                        }
                    } else {
                        op = MemOp::LR;
                        addr = lock_base + draw(rng, lock_words);
                    }
                } else if (roll < shape.lockPct + shape.optPct) {
                    if (!records.empty() && (rng.next() & 1) != 0) {
                        addr = records.back();
                        records.pop_back();
                        op = (rng.next() & 1) != 0 ? MemOp::ER : MemOp::RP;
                    } else {
                        op = MemOp::DW;
                        addr = next_record;
                        next_record += block;
                        wdata = rng.next();
                    }
                } else {
                    addr = draw(rng, shape.spanWords);
                    if (draw(rng, 100) < shape.writePct) {
                        op = MemOp::W;
                        wdata = rng.next();
                    } else {
                        op = MemOp::R;
                    }
                }
            }

            const System::Access access =
                system.access(pe, op, addr, Area::Heap, wdata);
            if (access.lockWait) {
                st.hasRetry = true;
                st.retryOp = op;
                st.retryAddr = addr;
                st.retryData = wdata;
                continue;
            }
            st.hasRetry = false;
            if (op == MemOp::LR) {
                st.holdsLock = true;
                st.heldLock = addr;
            } else if (op == MemOp::UW || op == MemOp::U) {
                st.holdsLock = false;
            }
            if (op == MemOp::DW)
                records.push_back(addr);
            completed += 1;
            fingerprint = mix(fingerprint,
                              (static_cast<std::uint64_t>(pe) << 8) |
                                  static_cast<std::uint64_t>(op));
            fingerprint = mix(fingerprint, addr);
            fingerprint = mix(fingerprint, access.data);
        }
        // Drain: release held locks so no PE is left parked at teardown.
        // Pick the earliest-clock unparked PE that still has work; one
        // always exists because every parked PE waits on a lock whose
        // holder is unparked (hold-at-most-one).
        for (;;) {
            PeId pe = kNoPe;
            bool anything_left = false;
            for (PeId p = 0; p < system.numPes(); ++p) {
                if (system.parked(p)) {
                    anything_left = true;
                    continue;
                }
                if (!state[p].hasRetry && !state[p].holdsLock)
                    continue;
                anything_left = true;
                if (pe == kNoPe || system.clock(p) < system.clock(pe))
                    pe = p;
            }
            if (!anything_left)
                break;
            PeState& st = state[pe];
            MemOp op = MemOp::U;
            Addr addr;
            Word wdata = 0;
            if (st.hasRetry) {
                op = st.retryOp;
                addr = st.retryAddr;
                wdata = st.retryData;
            } else {
                addr = st.heldLock;
            }
            const System::Access access =
                system.access(pe, op, addr, Area::Heap, wdata);
            if (access.lockWait) {
                st.hasRetry = true;
                st.retryOp = op;
                st.retryAddr = addr;
                st.retryData = wdata;
                continue;
            }
            st.hasRetry = false;
            if (op == MemOp::LR) {
                st.holdsLock = true;
                st.heldLock = addr;
            } else if (op == MemOp::UW || op == MemOp::U) {
                st.holdsLock = false;
            }
            fingerprint = mix(fingerprint, addr);
        }
        const auto stop = std::chrono::steady_clock::now();

        const double seconds =
            std::chrono::duration<double>(stop - start).count();
        if (rep == 0 || seconds < m.seconds)
            m.seconds = seconds;
        m.fingerprint = fingerprint;
        m.makespan = system.makespan();
        m.busTrans = 0;
        for (int p = 0; p < kNumBusPatterns; ++p)
            m.busTrans += system.bus().stats().transByPattern[p];
        m.protoHash = system.protocolHash(0, shape.spanWords);
        m.interCluster = system.bus().stats().interClusterCycles;
        if (stats_out != nullptr)
            *stats_out = system.bus().stats();
    }
    return m;
}

/** One parallel-core run's observables. */
struct ParMeasurement {
    double seconds = 0;             ///< Best wall time over the reps.
    std::uint64_t completed = 0;    ///< References completed.
    std::uint64_t localRefs = 0;    ///< Concurrent private-hit refs.
    std::uint64_t epochs = 0;       ///< Epoch-gate rendezvous.
    std::uint64_t fingerprint = 0;  ///< Jobs-invariant run fingerprint.
    std::uint64_t makespan = 0;
    std::uint64_t busTrans = 0;
    std::uint64_t protoHash = 0;
    std::uint64_t interCluster = 0;
    bool serialized = false;
};

/**
 * Drive the per-PE independent-stream workload (ParWorkloadSource)
 * through runParallelCore with @p jobs workers, repeated @p reps times;
 * keeps the fastest wall time. Non-timing observables are a pure
 * function of the seed and must be identical for any jobs count — the
 * caller enforces that.
 */
ParMeasurement
runParCore(std::uint32_t pes, std::uint64_t steps_total, unsigned jobs,
           std::uint32_t reps, const ParShape& base_shape,
           const ClusterConfig& cluster)
{
    ParMeasurement m;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        ParShape shape = base_shape;
        shape.stepsPerPe = std::max<std::uint64_t>(1, steps_total / pes);
        SystemConfig sys_config;
        sys_config.numPes = pes;
        sys_config.cluster = cluster;
        ParWorkloadSource source(shape, pes,
                                 sys_config.cache.geometry.blockWords);
        sys_config.memoryWords = source.memoryWords();
        sys_config.validate();
        System system(sys_config);

        ParallelCoreOptions options;
        options.jobs = jobs;
        const auto start = std::chrono::steady_clock::now();
        const ParallelRunResult result =
            runParallelCore(system, source, options);
        const auto stop = std::chrono::steady_clock::now();

        const double seconds =
            std::chrono::duration<double>(stop - start).count();
        if (rep == 0 || seconds < m.seconds)
            m.seconds = seconds;
        m.completed = result.completedRefs;
        m.localRefs = result.localRefs;
        m.epochs = result.epochs;
        m.fingerprint = result.fingerprint;
        m.serialized = result.serialized;
        m.makespan = system.makespan();
        m.busTrans = 0;
        for (int p = 0; p < kNumBusPatterns; ++p)
            m.busTrans += system.bus().stats().transByPattern[p];
        m.protoHash = system.protocolHash(0, sys_config.memoryWords);
        m.interCluster = system.bus().stats().interClusterCycles;
    }
    return m;
}

std::string
hex(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
fmt(const char* spec, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, spec, v);
    return buf;
}

int
perfMain(int argc, char** argv)
{
    BenchContext ctx = BenchContext::parse(argc, argv);
    // The filter's payoff grows with the port count, so this harness
    // defaults to 16 PEs (the paper's largest configuration) rather than
    // the table binaries' 8.
    ctx.pes = static_cast<std::uint32_t>(
        ctx.options.getIntEnv("pes", "REPRO_PES", 16));
    const bool smoke = ctx.options.getBool("smoke");
    std::uint32_t reps = static_cast<std::uint32_t>(
        ctx.options.getInt("reps", smoke ? 1 : 3));
    std::uint64_t steps = 40000ull * ctx.scale;
    std::uint32_t max_pes = std::max<std::uint32_t>(1, ctx.pes);
    if (smoke) {
        steps = std::min<std::uint64_t>(steps, 4000);
        // An explicit --pes wins over the smoke cap so CI can smoke wide
        // (e.g. 128-PE clustered) grids without the full step count.
        if (!ctx.options.has("pes"))
            max_pes = std::min<std::uint32_t>(max_pes, 4);
    }
    const double min_speedup =
        std::strtod(ctx.options.getString("min-speedup", "0").c_str(),
                    nullptr);

    Shape shape;
    shape.spanWords = static_cast<Addr>(
        ctx.options.getInt("span", static_cast<std::int64_t>(
                                       shape.spanWords)));
    shape.writePct = static_cast<std::uint32_t>(
        ctx.options.getInt("write-pct", shape.writePct));
    shape.lockPct = static_cast<std::uint32_t>(
        ctx.options.getInt("lock-pct", shape.lockPct));
    shape.optPct = static_cast<std::uint32_t>(
        ctx.options.getInt("opt-pct", shape.optPct));

    ClusterConfig cluster;
    cluster.clusterSize = static_cast<std::uint32_t>(
        ctx.options.getInt("cluster-size", 0));
    cluster.hopCycles = static_cast<std::uint32_t>(
        ctx.options.getInt("hop-cycles", cluster.hopCycles));

    banner("pim_perf: snoop-filter simulator throughput", ctx);
    std::printf("%llu refs/point, best of %u reps, span %llu words "
                "(docs/PERFORMANCE.md)\n",
                static_cast<unsigned long long>(steps), reps,
                static_cast<unsigned long long>(shape.spanWords));
    if (cluster.clustered()) {
        std::printf("clustered: %u PEs/bus, %u-cycle hops "
                    "(docs/ARCHITECTURE.md)\n",
                    cluster.clusterSize, cluster.hopCycles);
    }
    std::printf("\n");

    BenchJson json(ctx, "perf");

    std::vector<std::uint32_t> pe_points;
    for (std::uint32_t p = 1; p < max_pes; p *= 2)
        pe_points.push_back(p);
    pe_points.push_back(max_pes);

    Table table("measured: refs/sec, filter off vs on (identical runs)");
    table.setHeader({"PEs", "cycles/ref", "refs/s off", "refs/s on",
                     "speedup"});

    int failures = 0;
    double last_speedup = 0;
    for (std::uint32_t pes : pe_points) {
        const Measurement off = runWorkload(pes, steps, /*filter=*/false,
                                            reps, /*seed=*/1, shape,
                                            cluster);
        const Measurement on = runWorkload(pes, steps, /*filter=*/true,
                                           reps, /*seed=*/1, shape,
                                           cluster);

        // Exactness gate: the filter must not change a single observable
        // (cluster routing included — routes come from the directory,
        // which is maintained identically in both modes).
        if (off.fingerprint != on.fingerprint ||
            off.makespan != on.makespan || off.busTrans != on.busTrans ||
            off.protoHash != on.protoHash ||
            off.interCluster != on.interCluster) {
            std::printf("FAIL: filter changed the run at %u PEs "
                        "(fingerprint %s vs %s, makespan %llu vs %llu, "
                        "bus %llu vs %llu, proto %s vs %s)\n",
                        pes, hex(off.fingerprint).c_str(),
                        hex(on.fingerprint).c_str(),
                        static_cast<unsigned long long>(off.makespan),
                        static_cast<unsigned long long>(on.makespan),
                        static_cast<unsigned long long>(off.busTrans),
                        static_cast<unsigned long long>(on.busTrans),
                        hex(off.protoHash).c_str(),
                        hex(on.protoHash).c_str());
            ++failures;
            continue;
        }

        const double total_refs = static_cast<double>(steps);
        const double rps_off = total_refs / off.seconds;
        const double rps_on = total_refs / on.seconds;
        const double speedup = rps_on / rps_off;
        const double cycles_per_ref =
            static_cast<double>(on.makespan) / total_refs;
        last_speedup = speedup;

        table.addRow({std::to_string(pes), fmt("%.1f", cycles_per_ref),
                      fmt("%.0f", rps_off), fmt("%.0f", rps_on),
                      fmt("%.2fx", speedup)});

        for (int mode = 0; mode < 2; ++mode) {
            const bool filtered = mode == 1;
            const Measurement& m = filtered ? on : off;
            json.row();
            json.set("bench", "perf");
            json.set("pes_point", pes);
            json.set("mode", filtered ? "filtered" : "unfiltered");
            json.set("refs", steps);
            json.set("wall_seconds", m.seconds);
            json.set("refs_per_sec", total_refs / m.seconds);
            json.set("cycles_per_ref", cycles_per_ref);
            json.set("bus_transactions", m.busTrans);
            json.set("fingerprint", hex(m.fingerprint));
            json.set("speedup_vs_unfiltered", filtered ? speedup : 1.0);
            json.set("par_jobs", 0);
            json.set("speedup_vs_seq", 1.0);
            json.set("cluster_size", cluster.clusterSize);
            json.set("hop_cycles", cluster.hopCycles);
            json.set("inter_cluster_cycles", m.interCluster);
        }
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("simulated observables (fingerprint, makespan, bus "
                "transactions, protocol hash) identical in both modes "
                "at every point\n");

    if (failures == 0 && min_speedup > 0 &&
        last_speedup < min_speedup) {
        std::printf("FAIL: speedup %.2fx at %u PEs is below the "
                    "--min-speedup=%.2f gate\n",
                    last_speedup, pe_points.back(), min_speedup);
        ++failures;
    }

    // Parallel discrete-event core section (--par-jobs=N).
    const unsigned par_jobs = static_cast<unsigned>(
        ctx.options.getInt("par-jobs", 0));
    if (par_jobs >= 1) {
        const double min_par_speedup = std::strtod(
            ctx.options.getString("min-par-speedup", "0").c_str(),
            nullptr);
        const double min_par_local_frac = std::strtod(
            ctx.options.getString("min-par-local-frac", "0").c_str(),
            nullptr);
        ParShape par_shape;
        par_shape.sharedPct = static_cast<std::uint32_t>(
            ctx.options.getInt("par-shared-pct", par_shape.sharedPct));
        par_shape.lockPct = static_cast<std::uint32_t>(
            ctx.options.getInt("par-lock-pct", par_shape.lockPct));
        par_shape.optPct = static_cast<std::uint32_t>(
            ctx.options.getInt("par-opt-pct", par_shape.optPct));

        std::printf("\nparallel core: serialized vs %u jobs "
                    "(docs/ARCHITECTURE.md \"Threading model\")\n",
                    par_jobs);
        Table par_table("measured: refs/sec, serialized vs parallel "
                        "(identical runs)");
        par_table.setHeader({"PEs", "local%", "epochs", "refs/s seq",
                             "refs/s par", "speedup"});

        double last_par_speedup = 0;
        double last_local_frac = 0;
        for (std::uint32_t pes : pe_points) {
            const ParMeasurement seq =
                runParCore(pes, steps, 1, reps, par_shape, cluster);
            const ParMeasurement par =
                runParCore(pes, steps, par_jobs, reps, par_shape,
                           cluster);

            // Determinism gate: the jobs count must not change a single
            // observable (the issue's identical-results contract).
            if (seq.fingerprint != par.fingerprint ||
                seq.makespan != par.makespan ||
                seq.busTrans != par.busTrans ||
                seq.protoHash != par.protoHash ||
                seq.interCluster != par.interCluster ||
                seq.completed != par.completed) {
                std::printf(
                    "FAIL: parallel core diverged at %u PEs, %u jobs "
                    "(fingerprint %s vs %s, makespan %llu vs %llu, "
                    "bus %llu vs %llu, proto %s vs %s)\n",
                    pes, par_jobs, hex(seq.fingerprint).c_str(),
                    hex(par.fingerprint).c_str(),
                    static_cast<unsigned long long>(seq.makespan),
                    static_cast<unsigned long long>(par.makespan),
                    static_cast<unsigned long long>(seq.busTrans),
                    static_cast<unsigned long long>(par.busTrans),
                    hex(seq.protoHash).c_str(),
                    hex(par.protoHash).c_str());
                ++failures;
                continue;
            }

            const double total_refs = static_cast<double>(seq.completed);
            const double rps_seq = total_refs / seq.seconds;
            const double rps_par = total_refs / par.seconds;
            const double par_speedup = rps_par / rps_seq;
            const double local_frac =
                par.completed == 0
                    ? 0.0
                    : static_cast<double>(par.localRefs) /
                          static_cast<double>(par.completed);
            last_par_speedup = par_speedup;
            last_local_frac = local_frac;

            par_table.addRow(
                {std::to_string(pes), fmt("%.1f%%", 100.0 * local_frac),
                 std::to_string(par.epochs), fmt("%.0f", rps_seq),
                 fmt("%.0f", rps_par), fmt("%.2fx", par_speedup)});

            for (int mode = 0; mode < 2; ++mode) {
                const bool parallel = mode == 1;
                const ParMeasurement& m = parallel ? par : seq;
                json.row();
                json.set("bench", "par-core");
                json.set("pes_point", pes);
                json.set("mode", parallel ? "par-core" : "seq-core");
                json.set("refs", m.completed);
                json.set("wall_seconds", m.seconds);
                json.set("refs_per_sec", total_refs / m.seconds);
                json.set("cycles_per_ref",
                         static_cast<double>(m.makespan) / total_refs);
                json.set("bus_transactions", m.busTrans);
                json.set("fingerprint", hex(m.fingerprint));
                json.set("speedup_vs_unfiltered", 1.0);
                json.set("par_jobs", parallel ? par_jobs : 1);
                json.set("speedup_vs_seq", parallel ? par_speedup : 1.0);
                json.set("local_frac", parallel ? local_frac : 0.0);
                json.set("epochs", m.epochs);
                json.set("cluster_size", cluster.clusterSize);
                json.set("hop_cycles", cluster.hopCycles);
                json.set("inter_cluster_cycles", m.interCluster);
            }
        }

        std::printf("%s\n", par_table.toString().c_str());
        std::printf("observables identical between the serialized and "
                    "%u-job runs at every point\n", par_jobs);

        if (min_par_speedup > 0 && last_par_speedup < min_par_speedup) {
            std::printf("FAIL: parallel speedup %.2fx at %u PEs is below "
                        "the --min-par-speedup=%.2f gate\n",
                        last_par_speedup, pe_points.back(),
                        min_par_speedup);
            ++failures;
        }
        if (min_par_local_frac > 0 &&
            last_local_frac < min_par_local_frac) {
            std::printf("FAIL: local fraction %.3f at %u PEs is below "
                        "the --min-par-local-frac=%.3f gate\n",
                        last_local_frac, pe_points.back(),
                        min_par_local_frac);
            ++failures;
        }
    }

    const std::string attribution_out =
        ctx.options.getString("attribution-out", "");
    if (!attribution_out.empty()) {
        // One extra untimed run with the engine attached; the timed A/B
        // points above never carry a sink.
        std::unique_ptr<AttributionEngine> attr;
        BusStats attr_stats;
        runWorkload(max_pes, steps, /*filter=*/true, /*reps=*/1,
                    /*seed=*/1, shape, cluster, &attr, &attr_stats);
        const std::string attr_error = attr->crossCheck(attr_stats);
        if (!attr_error.empty()) {
            std::printf("FAIL: attribution cross-check: %s\n",
                        attr_error.c_str());
            ++failures;
        } else if (attr->writeFile(attribution_out, attr_stats)) {
            std::printf("attribution: %llu classified misses -> %s\n",
                        static_cast<unsigned long long>(
                            attr->classifiedMisses()),
                        attribution_out.c_str());
        } else {
            std::printf("FAIL: cannot write %s\n", attribution_out.c_str());
            ++failures;
        }
    }

    if (!json.write())
        return 1;
    if (json.enabled())
        std::printf("json: %s\n", json.path().c_str());
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain("pim_perf",
                                         [&] { return perfMain(argc, argv); });
}
