/**
 * @file
 * Protocol & replacement-policy zoo comparison (docs/ARCHITECTURE.md,
 * "Protocol matrix").
 *
 * Re-runs the paper's Table 3/4-shaped bus-cycle measurement across the
 * classic coherence matrix — PIM (the paper's 5-state protocol), MSI,
 * MESI, MOESI and update-based Dragon — and across the replacement
 * policies (LRU default, FIFO, random), on the same four KL1 benchmarks
 * with all software-command optimizations enabled. The PIM column is the
 * absolute baseline and is pinned byte-identical to the default build by
 * tests/golden/fig_zoo.txt; every other point is reported relative to
 * it. A detail table contrasts the invalidation-based protocols' I
 * traffic with Dragon's word-update traffic and the MESI/MSI share
 * write-backs the SM-family avoids.
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

const char* const kBenches[] = {"Tri", "Semi", "Puzzle", "Pascal"};

const ProtocolKind kProtocols[] = {
    ProtocolKind::PIM, ProtocolKind::MSI, ProtocolKind::MESI,
    ProtocolKind::MOESI, ProtocolKind::Dragon,
};

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Zoo: bus cycles across protocol x replacement", ctx);
    BenchJson json(ctx, "fig_zoo");

    Table protos("bus cycles by coherence protocol (relative to pim)");
    protos.setHeader(
        {"benchmark", "pim cycles", "msi", "mesi", "moesi", "dragon"});
    Table repls(
        "bus cycles by replacement policy (pim, relative to lru)");
    repls.setHeader({"benchmark", "lru cycles", "fifo", "random"});
    Table detail("invalidation vs update traffic (protocol extremes)");
    detail.setHeader({"benchmark", "I pim", "I dragon", "updates dragon",
                      "mem-wr pim", "mem-wr mesi"});

    for (const char* name : kBenches) {
        const BenchProgram& bench = benchmarkByName(name);
        json.row();
        json.set("bench", name);

        BenchResult by_proto[5];
        double pim_cycles = 0;
        std::vector<std::string> proto_cells = {name};
        for (int p = 0; p < 5; ++p) {
            Kl1Config cfg = paperConfig(ctx.pes, OptPolicy::all());
            cfg.cache.protocol = kProtocols[p];
            by_proto[p] = runBenchmark(bench, ctx.scale, cfg);
            const double cycles =
                static_cast<double>(by_proto[p].bus.totalCycles);
            if (kProtocols[p] == ProtocolKind::PIM) {
                pim_cycles = cycles;
                proto_cells.push_back(fmtCount(
                    by_proto[p].bus.totalCycles));
                json.set("bus_cycles_pim", by_proto[p].bus.totalCycles);
            } else {
                const double rel =
                    pim_cycles == 0 ? 0 : cycles / pim_cycles;
                proto_cells.push_back(fmtFixed(rel, 3));
                json.set(std::string("rel_") +
                             protocolKindName(kProtocols[p]),
                         pim_cycles == 0 ? 0.0 : cycles / pim_cycles);
            }
        }
        protos.addRow(proto_cells);

        std::vector<std::string> repl_cells = {name};
        double lru_cycles = 0;
        const ReplacementKind repl_kinds[] = {ReplacementKind::LRU,
                                              ReplacementKind::FIFO,
                                              ReplacementKind::Random};
        for (const ReplacementKind kind : repl_kinds) {
            Kl1Config cfg = paperConfig(ctx.pes, OptPolicy::all());
            cfg.cache.replacement = kind;
            const BenchResult r = runBenchmark(bench, ctx.scale, cfg);
            const double cycles = static_cast<double>(r.bus.totalCycles);
            if (kind == ReplacementKind::LRU) {
                lru_cycles = cycles;
                repl_cells.push_back(fmtCount(r.bus.totalCycles));
            } else {
                repl_cells.push_back(
                    fmtFixed(lru_cycles == 0 ? 0 : cycles / lru_cycles,
                             3));
                json.set(std::string("repl_rel_") +
                             replacementKindName(kind),
                         lru_cycles == 0 ? 0.0 : cycles / lru_cycles);
            }
        }
        repls.addRow(repl_cells);

        const BenchResult& pim_r = by_proto[0];
        const BenchResult& mesi_r = by_proto[2];
        const BenchResult& dragon_r = by_proto[4];
        const std::uint64_t dragon_updates =
            dragon_r.bus.transByPattern[static_cast<int>(
                BusPattern::WordUpdate)];
        detail.addRow(
            {name,
             fmtCount(pim_r.bus.cmdCounts[static_cast<int>(BusCmd::I)]),
             fmtCount(
                 dragon_r.bus.cmdCounts[static_cast<int>(BusCmd::I)]),
             fmtCount(dragon_updates),
             fmtCount(pim_r.bus.memoryWrites),
             fmtCount(mesi_r.bus.memoryWrites)});
        json.set("updates_dragon", dragon_updates);
    }
    json.write();
    protos.print(std::cout);
    std::printf("\n");
    repls.print(std::cout);
    std::printf("\n");
    detail.print(std::cout);
    std::printf(
        "\nShape checks: the pim column is the default build baseline"
        "\n(byte-identical, pinned by the golden file). MSI pays for the"
        "\nmissing EC state, MSI/MESI pay share write-backs the SM state"
        "\navoids, MOESI tracks pim closely, and Dragon trades"
        "\ninvalidations for word-update broadcasts.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "fig_zoo", [&] { return pim::kl1::bench::run(argc, argv); });
}
