/**
 * @file
 * Schema validator for the simulator's JSON outputs (BENCH_*.json,
 * SWEEP.json, metrics, timelines, reportAllJson documents). Parses each
 * positional file and checks every --require=PATH dotted path resolves
 * to a value (numeric segments index arrays, e.g.
 * "rows.0.measured_cycles").
 *
 * --schema=NAME prepends a built-in required-path set for the
 * repository's standard documents: `bench` (a table binary's --json
 * report), `sweep` (pim_sweep's SWEEP.json, docs/EXPERIMENTS.md),
 * `sweep-perf` (its SWEEP.perf.json engine-throughput sidecar), `perf`
 * (pim_perf's BENCH_perf.json snoop-filter throughput report),
 * `campaign` (pim_soak's CAMPAIGN.json, docs/ROBUSTNESS.md),
 * `attribution` (the miss/cycle attribution report,
 * docs/OBSERVABILITY.md) and `history` (pim_report's
 * BENCH_HISTORY.jsonl ledger — JSONL, so each line is validated as its
 * own document). Explicit --require paths are checked in addition.
 *
 * Exit codes: 0 = all files parse and all required paths resolve;
 * 1 = a parse failure or a missing path. Used by the ctest `obs` and
 * `sweep` labels to validate schemas without a Python dependency.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/options.h"
#include "common/sim_fault.h"

using namespace pim;

namespace {

void
usage()
{
    std::printf(
        "json_check FILE... [--schema=NAME] [--require=PATH ...]\n"
        "  Parses each FILE as JSON and verifies every --require dotted\n"
        "  path resolves (numeric segments index arrays).\n"
        "  --schema adds a built-in path set: bench, sweep, sweep-perf,\n"
        "  perf, zoo, campaign, attribution, history (history validates\n"
        "  each JSONL line as its own document).\n");
}

/** Built-in required paths for @p schema; false if unknown. */
bool
schemaPaths(const std::string& schema, std::vector<std::string>* out)
{
    if (schema == "bench") {
        // A table/figure binary's --json report.
        *out = {"name", "scale", "pes", "rows.0.bench"};
        return true;
    }
    if (schema == "sweep") {
        // pim_sweep's SWEEP.json (docs/EXPERIMENTS.md).
        *out = {"name",
                "spec_seed",
                "tasks",
                "failed_rows",
                "fingerprint",
                "experiments.0.id",
                "experiments.0.kind",
                "experiments.0.rows.0.task",
                "experiments.0.rows.0.benchmark",
                "experiments.0.rows.0.makespan",
                "experiments.0.rows.0.bus_cycles",
                "experiments.0.rows.0.failed",
                "experiments.0.aggregate.makespan.mean",
                "experiments.0.aggregate.makespan.min",
                "experiments.0.aggregate.makespan.max"};
        return true;
    }
    if (schema == "sweep-perf") {
        // pim_sweep's SWEEP.perf.json engine-throughput sidecar.
        *out = {"jobs", "tasks", "wall_seconds", "task_seconds_sum",
                "sims_per_sec", "speedup_vs_serial"};
        return true;
    }
    if (schema == "campaign") {
        // pim_soak's CAMPAIGN.json (docs/ROBUSTNESS.md).
        *out = {"name",
                "seeds_per_plan",
                "cells_total",
                "cells.0.plan",
                "cells.0.seed_slot",
                "cells.0.outcome",
                "cells.0.fires",
                "totals.clean",
                "totals.detected_auditor",
                "totals.detected_watchdog",
                "totals.timed_out",
                "totals.escaped",
                "escaped"};
        return true;
    }
    if (schema == "attribution") {
        // The attribution engine's report (docs/OBSERVABILITY.md).
        *out = {"name",
                "pes",
                "miss_classes.total",
                "miss_classes.cold",
                "miss_classes.capacity",
                "miss_classes.conflict",
                "miss_classes.invalidation",
                "miss_classes.lock_purge",
                "miss_classes.flush",
                "buckets.0.bucket",
                "buckets.0.cycles",
                "buckets.0.transactions",
                "by_op",
                "by_pe.0.pe",
                "hot_blocks",
                "locks",
                "waits",
                "cross_check.bus_total_cycles",
                "cross_check.attributed_cycles",
                "cross_check.match"};
        return true;
    }
    if (schema == "history") {
        // One pim_report ledger record (each JSONL line is one doc).
        *out = {"seq", "stamp", "label", "inputs", "metrics"};
        return true;
    }
    if (schema == "zoo") {
        // fig_zoo's protocol x replacement comparison report.
        *out = {"name",
                "scale",
                "pes",
                "rows.0.bench",
                "rows.0.bus_cycles_pim",
                "rows.0.rel_msi",
                "rows.0.rel_mesi",
                "rows.0.rel_moesi",
                "rows.0.rel_dragon",
                "rows.0.repl_rel_fifo",
                "rows.0.repl_rel_random",
                "rows.0.updates_dragon"};
        return true;
    }
    if (schema == "perf") {
        // pim_perf's BENCH_perf.json throughput report (snoop-filter
        // A/B rows, plus par-core rows under --par-jobs; par_jobs and
        // speedup_vs_seq appear on every row — 0 / 1.0 on A/B rows).
        *out = {"name",
                "scale",
                "pes",
                "rows.0.bench",
                "rows.0.pes_point",
                "rows.0.mode",
                "rows.0.refs",
                "rows.0.refs_per_sec",
                "rows.0.cycles_per_ref",
                "rows.0.bus_transactions",
                "rows.0.fingerprint",
                "rows.0.speedup_vs_unfiltered",
                "rows.0.par_jobs",
                "rows.0.speedup_vs_seq",
                "rows.0.cluster_size",
                "rows.0.hop_cycles",
                "rows.0.inter_cluster_cycles"};
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opts = Options::parse(argc, argv);
    if (opts.getBool("help") || opts.positional().empty()) {
        usage();
        return opts.getBool("help") ? 0 : 1;
    }

    // Collect every --require (the shared parser keeps only the last
    // value per name, so scan argv directly for repeats).
    std::vector<std::string> required;
    if (opts.has("schema")) {
        const std::string schema = opts.getString("schema");
        if (!schemaPaths(schema, &required)) {
            std::fprintf(stderr,
                         "json_check: unknown schema '%s' (expected "
                         "bench, sweep, sweep-perf, perf, zoo, "
                         "campaign, attribution or history)\n",
                         schema.c_str());
            return 1;
        }
    }
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string prefix = "--require=";
        if (arg.rfind(prefix, 0) == 0)
            required.push_back(arg.substr(prefix.size()));
    }

    const bool jsonl = opts.getString("schema", "") == "history";

    int failures = 0;
    for (const std::string& path : opts.positional()) {
        if (jsonl) {
            // A ledger is JSONL: every non-blank line is one record and
            // must satisfy the schema on its own.
            std::ifstream in(path, std::ios::binary);
            if (!in) {
                std::fprintf(stderr, "json_check: %s: cannot open\n",
                             path.c_str());
                ++failures;
                continue;
            }
            std::string line;
            std::size_t line_no = 0;
            std::size_t records = 0;
            int bad = 0;
            while (std::getline(in, line)) {
                ++line_no;
                if (line.find_first_not_of(" \t\r") == std::string::npos)
                    continue;
                ++records;
                JsonValue rec;
                try {
                    rec = JsonValue::parse(line);
                } catch (const SimFault& fault) {
                    std::fprintf(stderr, "json_check: %s:%zu: %s\n",
                                 path.c_str(), line_no, fault.what());
                    ++bad;
                    continue;
                }
                for (const std::string& req : required) {
                    if (rec.findPath(req) == nullptr) {
                        std::fprintf(stderr,
                                     "json_check: %s:%zu: missing "
                                     "required path '%s'\n",
                                     path.c_str(), line_no, req.c_str());
                        ++bad;
                    }
                }
            }
            if (records == 0) {
                std::fprintf(stderr, "json_check: %s: no records\n",
                             path.c_str());
                ++bad;
            }
            failures += bad;
            if (bad == 0) {
                std::printf("json_check: %s: ok (%zu ledger records)\n",
                            path.c_str(), records);
            }
            continue;
        }
        JsonValue doc;
        try {
            doc = JsonValue::parseFile(path);
        } catch (const SimFault& fault) {
            std::fprintf(stderr, "json_check: %s: %s\n", path.c_str(),
                         fault.what());
            ++failures;
            continue;
        }
        int missing = 0;
        for (const std::string& req : required) {
            if (doc.findPath(req) == nullptr) {
                std::fprintf(stderr,
                             "json_check: %s: missing required path "
                             "'%s'\n",
                             path.c_str(), req.c_str());
                ++missing;
            }
        }
        failures += missing;
        if (missing == 0) {
            std::printf("json_check: %s: ok (%zu top-level members)\n",
                        path.c_str(), doc.size());
        }
    }
    return failures == 0 ? 0 : 1;
}
