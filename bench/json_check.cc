/**
 * @file
 * Schema validator for the simulator's JSON outputs (BENCH_*.json,
 * metrics, timelines, reportAllJson documents). Parses each positional
 * file and checks every --require=PATH dotted path resolves to a value
 * (numeric segments index arrays, e.g. "rows.0.measured_cycles").
 *
 * Exit codes: 0 = all files parse and all required paths resolve;
 * 1 = a parse failure or a missing path. Used by the ctest `obs` label
 * to validate the bench --json schema without a Python dependency.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/options.h"
#include "common/sim_fault.h"

using namespace pim;

namespace {

void
usage()
{
    std::printf(
        "json_check FILE... [--require=PATH ...]\n"
        "  Parses each FILE as JSON and verifies every --require dotted\n"
        "  path resolves (numeric segments index arrays).\n");
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opts = Options::parse(argc, argv);
    if (opts.getBool("help") || opts.positional().empty()) {
        usage();
        return opts.getBool("help") ? 0 : 1;
    }

    // Collect every --require (the shared parser keeps only the last
    // value per name, so scan argv directly for repeats).
    std::vector<std::string> required;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::string prefix = "--require=";
        if (arg.rfind(prefix, 0) == 0)
            required.push_back(arg.substr(prefix.size()));
    }

    int failures = 0;
    for (const std::string& path : opts.positional()) {
        JsonValue doc;
        try {
            doc = JsonValue::parseFile(path);
        } catch (const SimFault& fault) {
            std::fprintf(stderr, "json_check: %s: %s\n", path.c_str(),
                         fault.what());
            ++failures;
            continue;
        }
        int missing = 0;
        for (const std::string& req : required) {
            if (doc.findPath(req) == nullptr) {
                std::fprintf(stderr,
                             "json_check: %s: missing required path "
                             "'%s'\n",
                             path.c_str(), req.c_str());
                ++missing;
            }
        }
        failures += missing;
        if (missing == 0) {
            std::printf("json_check: %s: ok (%zu top-level members)\n",
                        path.c_str(), doc.size());
        }
    }
    return failures == 0 ? 0 : 1;
}
