/**
 * @file
 * Reproduces Figure 1 of the paper: "Cache Block Size vs. Cache Miss
 * Ratio and Bus Traffic" — four-way set-associative 4-Kword I+D caches
 * with all optimized commands, block size swept from 1 to 16 words.
 *
 * Expected shape (paper Section 4.3): the miss ratio improves steadily
 * with block size, but bus traffic is near-flat from 2 to 4 words and
 * grows past 4 — logic programs have too little spatial locality for
 * large blocks, so four-word blocks are the design point.
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Figure 1: Cache Block Size vs Miss Ratio and Bus Traffic",
           ctx);
    BenchJson json(ctx, "fig1_block_size");

    const std::uint32_t block_sizes[] = {1, 2, 4, 8, 16};

    Table miss("measured: miss ratio (%)");
    Table bus("measured: bus cycles (relative to 4-word blocks)");
    std::vector<std::string> header = {"block words"};
    for (const BenchProgram& bench : allBenchmarks())
        header.push_back(bench.name);
    header.push_back("mean");
    miss.setHeader(header);
    bus.setHeader(header);

    // First pass to get the 4-word baseline per benchmark.
    std::map<std::string, double> base_cycles;
    std::map<std::pair<std::string, std::uint32_t>, BenchResult> results;
    for (std::uint32_t bw : block_sizes) {
        for (const BenchProgram& bench : allBenchmarks()) {
            Kl1Config config = paperConfig(ctx.pes);
            config.cache.geometry =
                CacheGeometry::forCapacity(4096, bw, 4);
            const BenchResult r = runBenchmark(bench, ctx.scale, config);
            results[{bench.name, bw}] = r;
            if (bw == 4)
                base_cycles[bench.name] =
                    static_cast<double>(r.bus.totalCycles);
        }
    }

    for (std::uint32_t bw : block_sizes) {
        std::vector<std::string> miss_cells = {std::to_string(bw)};
        std::vector<std::string> bus_cells = {std::to_string(bw)};
        std::vector<double> miss_vals;
        std::vector<double> bus_vals;
        for (const BenchProgram& bench : allBenchmarks()) {
            const BenchResult& r = results[{bench.name, bw}];
            const double mr = r.cache.missRatio() * 100.0;
            const double rel = static_cast<double>(r.bus.totalCycles) /
                               base_cycles[bench.name];
            miss_cells.push_back(fmtFixed(mr, 2));
            bus_cells.push_back(fmtFixed(rel, 2));
            miss_vals.push_back(mr);
            bus_vals.push_back(rel);
        }
        miss_cells.push_back(fmtFixed(mean(miss_vals), 2));
        bus_cells.push_back(fmtFixed(mean(bus_vals), 2));
        miss.addRow(miss_cells);
        bus.addRow(bus_cells);

        json.row();
        json.set("block_words", bw);
        std::size_t k = 0;
        for (const BenchProgram& bench : allBenchmarks()) {
            json.set("measured_miss_pct_" + std::string(bench.name),
                     miss_vals[k]);
            json.set("measured_bus_rel_" + std::string(bench.name),
                     bus_vals[k]);
            ++k;
        }
        json.set("measured_miss_pct_mean", mean(miss_vals));
        json.set("measured_bus_rel_mean", mean(bus_vals));
    }
    json.write();
    miss.print(std::cout);
    std::printf("\n");
    bus.print(std::cout);
    std::printf(
        "\nShape checks (paper Fig. 1): miss ratio falls monotonically"
        "\nwith block size while bus traffic bottoms out at small blocks"
        "\n(2-4 words within a few percent of each other) and grows"
        "\nclearly by 16-word blocks. Workloads with large contiguous"
        "\nstructures (Puzzle's vector boards, Semi) tolerate 8-word"
        "\nblocks; the list-heavy ones (Tri, Pascal) already pay for"
        "\nthem — the paper's point that logic programs lack the spatial"
        "\nlocality to exploit large blocks.\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "fig1_block_size", [&] { return pim::kl1::bench::run(argc, argv); });
}
