/**
 * @file
 * Chaos soak campaign (docs/ROBUSTNESS.md): fans a fault-plan x seed
 * grid over the sweep engine and classifies every cell's outcome —
 *
 *   clean                injection never fired / benign by design
 *   detected-auditor     CoherenceAuditor caught it (Corruption/Protocol)
 *   detected-watchdog    LockWatchdog caught it (Deadlock/Livelock/
 *                        Starvation)
 *   timed-out            the per-cell wall-clock budget expired
 *   escaped              a must-detect plan fired and nothing noticed
 *
 * The campaign FAILS (exit 1) if any injected fault escapes: every
 * detector hole is a bug in either the detectors or the plan taxonomy.
 * Results land in CAMPAIGN.json (validated by
 * `json_check --schema=campaign`); `--smoke` runs the small
 * deterministic grid wired into scripts/ci.sh (ctest label `soak`).
 *
 * Exit codes: 0 = campaign ran, zero escapes; 1 = escapes or unwritable
 * output; on a SimFault, simFaultExitCode's families (10 config, ...).
 */

#include <cstdio>
#include <cstring>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "common/fs_util.h"
#include "common/json.h"
#include "common/options.h"
#include "common/sim_fault.h"
#include "common/thread_pool.h"
#include "sweep/sweep_runner.h"

using namespace pim;
using namespace pim::sweep;

namespace {

/** One fault plan of the campaign grid. */
struct SoakPlan {
    const char* name;  ///< Experiment id / CAMPAIGN.json plan name.
    const char* spec;  ///< FaultPlan spec ("" = clean control).
    /**
     * True when any fire MUST be detected (auditor or watchdog): a
     * surviving fire is an `escaped` cell and fails the campaign.
     * False for benign-by-design sites (e.g. spurious_inv only costs
     * performance) and observe-only sites whose detection is load
     * dependent.
     */
    bool mustDetect;
    std::uint32_t lockPct;          ///< Lock-protocol traffic share.
    std::uint32_t livelockRetries;  ///< Watchdog override (0 = default).
};

/**
 * The smoke grid: plans whose detection is deterministic for the wired
 * seeds (everything is seeded, so a passing grid passes forever).
 */
const SoakPlan kSmokePlans[] = {
    {"clean", "", false, 10, 0},
    {"corrupt_word", "corrupt_word:p=0.01", true, 10, 0},
    {"forced_miss", "forced_miss:p=0.05", true, 10, 0},
    {"lost_ul", "lost_ul:p=1", true, 40, 0},
    {"stuck_lwait", "stuck_lwait:p=1,spurious_wakeup:p=0.5", true, 40, 50},
    {"spurious_inv", "spurious_inv:p=0.01", false, 10, 0},
};

/** The full grid adds the observe-only bus/cache/system sites. */
const SoakPlan kFullPlans[] = {
    {"clean", "", false, 10, 0},
    {"corrupt_word", "corrupt_word:p=0.01", true, 10, 0},
    {"bit_flip", "bit_flip:p=0.01", true, 10, 0},
    {"forced_miss", "forced_miss:p=0.05", true, 10, 0},
    {"lost_ul", "lost_ul:p=1", true, 40, 0},
    {"stuck_lwait", "stuck_lwait:p=1,spurious_wakeup:p=0.5", true, 40, 50},
    {"spurious_inv", "spurious_inv:p=0.01", false, 10, 0},
    {"spurious_wakeup", "spurious_wakeup:p=0.125", false, 40, 0},
    {"drop_snoop", "drop_snoop:p=0.005", false, 10, 0},
    {"dup_snoop", "dup_snoop:p=0.005", false, 10, 0},
};

/** Classified outcome of one campaign cell. */
struct SoakCell {
    std::string plan;
    std::string spec;
    std::uint64_t seedSlot = 0;
    std::string outcome;
    std::string faultKind; ///< "" when the cell did not fail.
    std::uint64_t fires = 0;
};

double
rowNumber(const SweepRow& row, const std::string& name)
{
    for (const auto& [metric_name, value] : row.metrics) {
        if (metric_name == name && value.isNumber)
            return value.number;
    }
    return 0;
}

std::string
classify(const SweepRow& row, bool must_detect, std::uint64_t fires)
{
    if (row.failed) {
        if (row.faultKind == simFaultKindName(SimFaultKind::Corruption) ||
            row.faultKind == simFaultKindName(SimFaultKind::Protocol))
            return "detected-auditor";
        if (row.faultKind == simFaultKindName(SimFaultKind::Deadlock) ||
            row.faultKind == simFaultKindName(SimFaultKind::Livelock) ||
            row.faultKind == simFaultKindName(SimFaultKind::Starvation))
            return "detected-watchdog";
        if (row.faultKind == simFaultKindName(SimFaultKind::Timeout) ||
            row.faultKind == simFaultKindName(SimFaultKind::Cancelled))
            return "timed-out";
        // Config/Parse from inside a cell is a harness bug, not a
        // detector outcome; surface it as an escape so the campaign
        // fails loudly instead of counting it clean.
        return "escaped";
    }
    if (fires > 0 && must_detect)
        return "escaped";
    return "clean";
}

void
usage()
{
    std::printf(
        "pim_soak: chaos soak campaign over the fault-injection plans\n"
        "  --smoke             small deterministic grid (CI; default is\n"
        "                      the full plan set)\n"
        "  --seeds=N           seeds per plan (default: smoke 3, full 8)\n"
        "  --steps=N           references per cell (default: smoke 6000,\n"
        "                      full 20000)\n"
        "  --pes=N             PEs per cell (default: 4)\n"
        "  --seed=N            campaign base seed (default: 1)\n"
        "  --jobs=N            worker threads (default: hardware)\n"
        "  --par-jobs=N        parallel-core jobs inside each cell; a\n"
        "                      stress cell always runs serialized-epoch,\n"
        "                      so outcomes are identical for any value\n"
        "                      (docs/ROBUSTNESS.md)\n"
        "  --timeout=SECS      per-cell wall-clock budget (default: 60)\n"
        "  --out=DIR           write CAMPAIGN.json here (default: none)\n"
        "  --list              print the plan grid and exit\n");
}

const char* const kKnownFlags[] = {
    "smoke", "seeds", "steps", "pes", "seed", "jobs", "timeout", "out",
    "list", "help", "par-jobs",
};

bool
flagsAreKnown(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            continue;
        std::string name(argv[i] + 2);
        name = name.substr(0, name.find('='));
        bool known = false;
        for (const char* flag : kKnownFlags)
            known = known || name == flag;
        if (!known) {
            std::fprintf(stderr, "pim_soak: unknown option --%s\n",
                         name.c_str());
            return false;
        }
    }
    return true;
}

std::string
renderCampaignJson(const std::string& name, std::uint64_t seeds,
                   const std::vector<SoakCell>& cells)
{
    std::size_t clean = 0, auditor = 0, watchdog = 0, timed = 0,
                escaped = 0;
    for (const SoakCell& cell : cells) {
        if (cell.outcome == "clean")
            ++clean;
        else if (cell.outcome == "detected-auditor")
            ++auditor;
        else if (cell.outcome == "detected-watchdog")
            ++watchdog;
        else if (cell.outcome == "timed-out")
            ++timed;
        else
            ++escaped;
    }

    std::ostringstream os;
    JsonWriter json(os, /*pretty=*/true);
    json.beginObject();
    json.field("name", name);
    json.field("seeds_per_plan", seeds);
    json.field("cells_total", static_cast<std::uint64_t>(cells.size()));
    json.key("cells");
    json.beginArray();
    for (const SoakCell& cell : cells) {
        json.beginObject();
        json.field("plan", cell.plan);
        json.field("spec", cell.spec);
        json.field("seed_slot", cell.seedSlot);
        json.field("outcome", cell.outcome);
        if (!cell.faultKind.empty())
            json.field("fault_kind", cell.faultKind);
        json.field("fires", cell.fires);
        json.endObject();
    }
    json.endArray();
    json.key("totals");
    json.beginObject();
    json.field("clean", static_cast<std::uint64_t>(clean));
    json.field("detected_auditor", static_cast<std::uint64_t>(auditor));
    json.field("detected_watchdog", static_cast<std::uint64_t>(watchdog));
    json.field("timed_out", static_cast<std::uint64_t>(timed));
    json.field("escaped", static_cast<std::uint64_t>(escaped));
    json.endObject();
    json.field("escaped", static_cast<std::uint64_t>(escaped));
    json.endObject();
    os << "\n";
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opts = Options::parse(argc, argv);
    if (opts.getBool("help")) {
        usage();
        return 0;
    }
    if (!flagsAreKnown(argc, argv)) {
        usage();
        return 1;
    }

    try {
        const bool smoke = opts.getBool("smoke");
        const SoakPlan* plans = smoke ? kSmokePlans : kFullPlans;
        const std::size_t num_plans =
            smoke ? std::size(kSmokePlans) : std::size(kFullPlans);
        const auto seeds = static_cast<std::uint32_t>(
            opts.getInt("seeds", smoke ? 3 : 8));
        const auto steps = static_cast<std::uint64_t>(
            opts.getInt("steps", smoke ? 6000 : 20000));
        const auto pes =
            static_cast<std::uint32_t>(opts.getInt("pes", 4));
        const auto par_jobs =
            static_cast<std::uint32_t>(opts.getInt("par-jobs", 0));

        if (opts.getBool("list")) {
            for (std::size_t p = 0; p < num_plans; ++p) {
                std::printf("%-16s %-12s %s\n", plans[p].name,
                            plans[p].mustDetect ? "must-detect"
                                                : "observe",
                            plans[p].spec[0] == '\0' ? "(clean control)"
                                                     : plans[p].spec);
            }
            std::printf("%zu plans x %u seeds = %zu cells\n", num_plans,
                        seeds, num_plans * seeds);
            return 0;
        }

        // Build the campaign as a sweep: one stress experiment per
        // plan, the seeds as the engine's implicit seed axis. Rides the
        // whole resilient execution plane for free — per-cell
        // timeouts, transient retry, parallel fan-out, failed cells as
        // result rows.
        SweepSpec spec;
        spec.name = smoke ? "soak_smoke" : "soak";
        spec.seed = static_cast<std::uint64_t>(opts.getInt("seed", 1));
        for (std::size_t p = 0; p < num_plans; ++p) {
            SweepExperiment experiment;
            experiment.id = plans[p].name;
            experiment.kind = TaskKind::Stress;
            experiment.seeds = seeds;
            experiment.base.set("steps", ParamValue::ofNumber(
                                             static_cast<double>(steps)));
            experiment.base.set("pes", ParamValue::ofNumber(pes));
            experiment.base.set("lockPct",
                                ParamValue::ofNumber(plans[p].lockPct));
            // Only when asked, so default campaign rows stay
            // byte-identical (the param lands in each row's JSON).
            if (par_jobs != 0) {
                experiment.base.set("parJobs",
                                    ParamValue::ofNumber(par_jobs));
            }
            if (plans[p].spec[0] != '\0')
                experiment.base.set("plan",
                                    ParamValue::ofText(plans[p].spec));
            if (plans[p].livelockRetries != 0) {
                experiment.base.set(
                    "livelockRetries",
                    ParamValue::ofNumber(plans[p].livelockRetries));
            }
            spec.experiments.push_back(std::move(experiment));
        }

        SweepOptions options;
        options.jobs = static_cast<unsigned>(opts.getInt(
            "jobs",
            static_cast<std::int64_t>(ThreadPool::defaultWorkers())));
        options.timeoutSeconds = opts.getDouble("timeout", 60);

        std::printf("== soak %s: %zu plans x %u seeds = %zu cells on "
                    "%u workers ==\n",
                    spec.name.c_str(), num_plans, seeds,
                    spec.totalTasks(), options.jobs);

        const SweepOutcome outcome = runSweep(spec, options);

        std::vector<SoakCell> cells;
        cells.reserve(outcome.rows.size());
        std::size_t escaped = 0;
        for (const SweepRow& row : outcome.rows) {
            const SoakPlan& plan = plans[row.experiment];
            SoakCell cell;
            cell.plan = plan.name;
            cell.spec = plan.spec;
            cell.seedSlot = static_cast<std::uint64_t>(
                row.params.number("seed_slot", 0));
            cell.fires = static_cast<std::uint64_t>(
                rowNumber(row, "injector_fires"));
            cell.faultKind = row.failed ? row.faultKind : "";
            cell.outcome = classify(row, plan.mustDetect, cell.fires);
            if (cell.outcome == "escaped") {
                ++escaped;
                std::printf("  ESCAPED %s seed_slot=%llu: %llu fires, "
                            "no detector noticed\n",
                            cell.plan.c_str(),
                            static_cast<unsigned long long>(cell.seedSlot),
                            static_cast<unsigned long long>(cell.fires));
            }
            cells.push_back(std::move(cell));
        }

        const std::string doc =
            renderCampaignJson(spec.name, seeds, cells);

        std::size_t clean = 0, detected = 0, timed = 0;
        for (const SoakCell& cell : cells) {
            if (cell.outcome == "clean")
                ++clean;
            else if (cell.outcome == "timed-out")
                ++timed;
            else if (cell.outcome != "escaped")
                ++detected;
        }
        std::printf("cells: %zu total, %zu clean, %zu detected, "
                    "%zu timed-out, %zu escaped\n",
                    cells.size(), clean, detected, timed, escaped);

        const std::string out_dir = opts.getString("out", "");
        if (!out_dir.empty()) {
            const std::string path = out_dir + "/CAMPAIGN.json";
            std::string error;
            if (!writeFileAtomic(path, doc, &error)) {
                std::fprintf(stderr, "pim_soak: %s\n", error.c_str());
                return 1;
            }
            std::printf("wrote %s\n", path.c_str());
        }

        if (escaped != 0) {
            std::fprintf(stderr,
                         "pim_soak: %zu injected fault(s) ESCAPED every "
                         "detector — campaign FAILED\n",
                         escaped);
            return 1;
        }
        std::printf("zero escapes: every must-detect injection was "
                    "caught\n");
    } catch (const SimFault& fault) {
        std::fprintf(stderr, "pim_soak: error: kind=%s exit=%d %s\n",
                     simFaultKindName(fault.kind()),
                     simFaultExitCode(fault.kind()), fault.what());
        return simFaultExitCode(fault.kind());
    }
    return 0;
}
