/**
 * @file
 * Ablation: stop-and-copy garbage collection. The paper's system used
 * stop-and-copy GC and excluded GC references from its measurements,
 * noting (Section 4, citing Nishida [12]) that garbage collection
 * "will significantly affect heap referencing characteristics". This
 * bench quantifies that on our model: collections leave every cache
 * cold, so heap pressure turns into extra fetch traffic even though the
 * collector's own references are free.
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Ablation: stop-and-copy GC under heap pressure", ctx);
    BenchJson json(ctx, "ablation_gc");

    Table table("measured (Puzzle / Pascal)");
    table.setHeader({"benchmark", "heap words/PE", "GCs", "copied",
                     "reclaimed", "bus cycles", "miss %"});

    for (const char* name : {"Puzzle", "Pascal"}) {
        const BenchProgram& bench = benchmarkByName(name);
        // Roomy heap: no collections (the baseline).
        // Tight heaps: more and more collections.
        const std::uint32_t heap_log2[] = {23, 15, 14, 13};
        for (std::uint32_t log2 : heap_log2) {
            Kl1Config config = paperConfig(ctx.pes);
            config.enableGc = true;
            config.layout.heapWordsPerPe = 1u << log2;
            const BenchResult r = runBenchmark(bench, ctx.scale, config);
            table.addRow(
                {name, fmtCount(1u << log2),
                 fmtCount(r.run.gc.collections),
                 fmtEng(static_cast<double>(r.run.gc.wordsCopied), 1),
                 fmtEng(static_cast<double>(r.run.gc.wordsReclaimed), 1),
                 fmtEng(static_cast<double>(r.bus.totalCycles), 2),
                 fmtFixed(r.cache.missRatio() * 100, 2)});

            json.row();
            json.set("bench", name);
            json.set("heap_words_per_pe",
                     static_cast<std::uint64_t>(1u << log2));
            json.set("measured_collections", r.run.gc.collections);
            json.set("measured_bus_cycles",
                     static_cast<std::uint64_t>(r.bus.totalCycles));
            json.set("measured_miss_pct", r.cache.missRatio() * 100);
        }
        table.addRule();
    }
    json.write();
    table.print(std::cout);

    std::printf(
        "\nShape checks: identical answers at every heap size (the\n"
        "runner verifies them against the host mirror); as the heap\n"
        "shrinks, collections multiply and the cold-cache restarts push\n"
        "the miss ratio up, while total traffic can move either way —\n"
        "semispace compaction also improves heap locality. Either way\n"
        "the heap referencing behaviour is visibly reshaped, the paper's\n"
        "point in citing [12].\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "ablation_gc", [&] { return pim::kl1::bench::run(argc, argv); });
}
