/**
 * @file
 * Ablation: bus width and memory access time (paper Sections 4.2/4.4).
 * The paper observes that bus traffic is insensitive to the memory
 * access time (most traffic is cache-to-cache) but drops to 62-75% with
 * a two-word bus.
 */

#include "bench_util.h"

namespace pim::kl1::bench {
namespace {

int
run(int argc, const char* const* argv)
{
    const BenchContext ctx = BenchContext::parse(argc, argv);
    banner("Ablation: bus width and memory access time", ctx);
    BenchJson json(ctx, "ablation_bus_width");

    Table width("measured: bus cycles vs bus width (relative to 1 word)");
    width.setHeader({"width", "Tri", "Semi", "Puzzle", "Pascal", "mean"});
    std::map<std::string, double> base;
    for (std::uint32_t w : {1u, 2u, 4u}) {
        std::vector<std::string> cells = {std::to_string(w) + "w"};
        std::vector<double> ratios;
        for (const BenchProgram& bench : allBenchmarks()) {
            Kl1Config config = paperConfig(ctx.pes);
            config.timing.widthWords = w;
            const BenchResult r = runBenchmark(bench, ctx.scale, config);
            const double cycles = static_cast<double>(r.bus.totalCycles);
            if (w == 1)
                base[bench.name] = cycles;
            const double ratio = cycles / base[bench.name];
            cells.push_back(fmtFixed(ratio, 2));
            ratios.push_back(ratio);
        }
        cells.push_back(fmtFixed(mean(ratios), 2));
        width.addRow(cells);

        json.row();
        json.set("bus_width_words", w);
        json.set("measured_bus_rel_mean", mean(ratios));
    }
    width.print(std::cout);

    Table memlat(
        "\nmeasured: bus cycles vs memory access time (relative to 8)");
    memlat.setHeader({"mem cycles", "Tri", "Semi", "Puzzle", "Pascal",
                      "mean"});
    const std::uint32_t lats[] = {4, 8, 16, 32};
    std::map<std::pair<std::string, std::uint32_t>, double> cycles_at;
    for (std::uint32_t lat : lats) {
        for (const BenchProgram& bench : allBenchmarks()) {
            Kl1Config config = paperConfig(ctx.pes);
            config.timing.memAccessCycles = lat;
            const BenchResult r = runBenchmark(bench, ctx.scale, config);
            cycles_at[{bench.name, lat}] =
                static_cast<double>(r.bus.totalCycles);
        }
    }
    for (std::uint32_t lat : lats) {
        std::vector<std::string> cells = {std::to_string(lat)};
        std::vector<double> ratios;
        for (const BenchProgram& bench : allBenchmarks()) {
            const double ratio = cycles_at[{bench.name, lat}] /
                                 cycles_at[{bench.name, 8}];
            cells.push_back(fmtFixed(ratio, 2));
            ratios.push_back(ratio);
        }
        cells.push_back(fmtFixed(mean(ratios), 2));
        memlat.addRow(cells);

        json.row();
        json.set("mem_access_cycles", lat);
        json.set("measured_bus_rel_mean", mean(ratios));
    }
    json.write();
    memlat.print(std::cout);

    std::printf(
        "\nShape checks: a two-word bus cuts traffic to roughly"
        "\n0.62-0.75x (paper Section 4.4); doubling/halving the memory"
        "\naccess time moves total traffic far less than bus width does,"
        "\nbecause most transfers are cache-to-cache (paper Section"
        "\n4.2).\n");
    return 0;
}

} // namespace
} // namespace pim::kl1::bench

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "ablation_bus_width", [&] { return pim::kl1::bench::run(argc, argv); });
}
