/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: reference
 * throughput of the cache/bus model on synthetic traffic, and
 * reductions/second of the KL1 emulator. These measure the tool, not
 * the paper's system.
 */

#include <benchmark/benchmark.h>

#include "bench_kl1/programs.h"
#include "bench_kl1/workload.h"
#include "kl1/compiler.h"
#include "kl1/parser.h"
#include "sim/trace_replay.h"
#include "trace/synth.h"

namespace pim {
namespace {

void
BM_RandomTraffic(benchmark::State& state)
{
    RandomTrafficConfig config;
    config.numPes = static_cast<std::uint32_t>(state.range(0));
    config.refsPerPe = 20000;
    config.spanWords = 1 << 14;
    const auto trace = makeRandomTraffic(config);
    for (auto _ : state) {
        SystemConfig sys_config;
        sys_config.numPes = config.numPes;
        sys_config.memoryWords = 1 << 22;
        System sys(sys_config);
        TraceReplay replay(sys, trace);
        replay.run();
        benchmark::DoNotOptimize(sys.bus().stats().totalCycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_RandomTraffic)->Arg(2)->Arg(8);

void
BM_ProducerConsumer(benchmark::State& state)
{
    const bool optimized = state.range(0) != 0;
    const auto trace =
        makeProducerConsumer(0, 1, 2, 1 << 16, 1 << 14, 8, 4000,
                             optimized);
    for (auto _ : state) {
        SystemConfig sys_config;
        sys_config.numPes = 2;
        sys_config.memoryWords = 1 << 22;
        System sys(sys_config);
        TraceReplay replay(sys, trace);
        replay.run();
        benchmark::DoNotOptimize(sys.bus().stats().totalCycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ProducerConsumer)->Arg(0)->Arg(1);

void
BM_Kl1Reductions(benchmark::State& state)
{
    using namespace pim::kl1;
    using namespace pim::kl1::bench;
    const BenchProgram& bench = benchmarkByName("Puzzle");
    const Program parsed = parseProgram(bench.source);
    std::uint64_t reductions = 0;
    for (auto _ : state) {
        Module module = compileProgram(parsed);
        Emulator emu(std::move(module), paperConfig(8));
        const RunStats stats = emu.run(bench.query(1));
        reductions += stats.reductions;
        benchmark::DoNotOptimize(stats.makespan);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(reductions));
}
BENCHMARK(BM_Kl1Reductions);

void
BM_CompileBenchmarks(benchmark::State& state)
{
    using namespace pim::kl1;
    using namespace pim::kl1::bench;
    for (auto _ : state) {
        for (const BenchProgram& bench : allBenchmarks()) {
            Module module = compileProgram(parseProgram(bench.source));
            benchmark::DoNotOptimize(module.totalWords());
        }
    }
}
BENCHMARK(BM_CompileBenchmarks);

} // namespace
} // namespace pim

BENCHMARK_MAIN();
