/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: reference
 * throughput of the cache/bus model on synthetic traffic, and
 * reductions/second of the KL1 emulator. These measure the tool, not
 * the paper's system.
 *
 * The main wrapper matches the other bench binaries: escaped SimFaults
 * exit with their structured family code (runBenchMain), and
 * --json=PATH (or REPRO_JSON) lands a BENCH_microbench.json document
 * (one row per benchmark run, validated by `json_check --schema=bench`)
 * next to google-benchmark's normal console output. The wall-clock
 * fields deliberately avoid the "measured*" prefix the table binaries
 * use for simulated numbers, so pim_report's ledger never golden-gates
 * machine-dependent timings.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_kl1/programs.h"
#include "bench_kl1/workload.h"
#include "bench_util.h"
#include "kl1/compiler.h"
#include "kl1/parser.h"
#include "sim/trace_replay.h"
#include "trace/synth.h"

namespace pim {
namespace {

void
BM_RandomTraffic(benchmark::State& state)
{
    RandomTrafficConfig config;
    config.numPes = static_cast<std::uint32_t>(state.range(0));
    config.refsPerPe = 20000;
    config.spanWords = 1 << 14;
    const auto trace = makeRandomTraffic(config);
    for (auto _ : state) {
        SystemConfig sys_config;
        sys_config.numPes = config.numPes;
        sys_config.memoryWords = 1 << 22;
        System sys(sys_config);
        TraceReplay replay(sys, trace);
        replay.run();
        benchmark::DoNotOptimize(sys.bus().stats().totalCycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_RandomTraffic)->Arg(2)->Arg(8);

void
BM_ProducerConsumer(benchmark::State& state)
{
    const bool optimized = state.range(0) != 0;
    const auto trace =
        makeProducerConsumer(0, 1, 2, 1 << 16, 1 << 14, 8, 4000,
                             optimized);
    for (auto _ : state) {
        SystemConfig sys_config;
        sys_config.numPes = 2;
        sys_config.memoryWords = 1 << 22;
        System sys(sys_config);
        TraceReplay replay(sys, trace);
        replay.run();
        benchmark::DoNotOptimize(sys.bus().stats().totalCycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ProducerConsumer)->Arg(0)->Arg(1);

void
BM_Kl1Reductions(benchmark::State& state)
{
    using namespace pim::kl1;
    using namespace pim::kl1::bench;
    const BenchProgram& bench = benchmarkByName("Puzzle");
    const Program parsed = parseProgram(bench.source);
    std::uint64_t reductions = 0;
    for (auto _ : state) {
        Module module = compileProgram(parsed);
        Emulator emu(std::move(module), paperConfig(8));
        const RunStats stats = emu.run(bench.query(1));
        reductions += stats.reductions;
        benchmark::DoNotOptimize(stats.makespan);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(reductions));
}
BENCHMARK(BM_Kl1Reductions);

void
BM_CompileBenchmarks(benchmark::State& state)
{
    using namespace pim::kl1;
    using namespace pim::kl1::bench;
    for (auto _ : state) {
        for (const BenchProgram& bench : allBenchmarks()) {
            Module module = compileProgram(parseProgram(bench.source));
            benchmark::DoNotOptimize(module.totalWords());
        }
    }
}
BENCHMARK(BM_CompileBenchmarks);

/**
 * ConsoleReporter that also captures every per-iteration run row, so
 * the JSON document carries the same numbers the console shows.
 */
class CaptureReporter final : public benchmark::ConsoleReporter
{
  public:
    struct Row {
        std::string name;
        std::uint64_t iterations = 0;
        double timePerIter = 0; ///< In timeUnit (ns by default).
        std::string timeUnit;
        double itemsPerSec = 0;
        bool hasItems = false;
    };

    std::vector<Row> rows;

    void
    ReportRuns(const std::vector<Run>& runs) override
    {
        for (const Run& run : runs) {
            if (run.error_occurred || run.run_type != Run::RT_Iteration)
                continue;
            Row row;
            row.name = run.run_name.str();
            row.iterations = static_cast<std::uint64_t>(run.iterations);
            row.timePerIter = run.GetAdjustedRealTime();
            row.timeUnit = benchmark::GetTimeUnitString(run.time_unit);
            const auto item = run.counters.find("items_per_second");
            if (item != run.counters.end()) {
                row.itemsPerSec = item->second;
                row.hasItems = true;
            }
            rows.push_back(row);
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

int
microbenchMain(int argc, char** argv)
{
    using namespace pim::kl1::bench;

    // benchmark::Initialize consumes the --benchmark_* flags and leaves
    // ours (--json/--scale/--pes) in argv for the shared bench parser.
    benchmark::Initialize(&argc, argv);
    BenchContext ctx = BenchContext::parse(argc, argv);

    CaptureReporter reporter;
    const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (ran == 0) {
        std::fprintf(stderr,
                     "microbench_cache: no benchmarks matched the "
                     "filter\n");
        return 1;
    }

    BenchJson json(ctx, "microbench");
    for (const CaptureReporter::Row& row : reporter.rows) {
        json.row();
        json.set("bench", row.name);
        json.set("iterations", row.iterations);
        json.set("time_per_iter", row.timePerIter);
        json.set("time_unit", row.timeUnit);
        if (row.hasItems)
            json.set("items_per_second", row.itemsPerSec);
    }
    if (!json.write())
        return 1;
    if (json.enabled())
        std::printf("json: %s\n", json.path().c_str());
    return 0;
}

} // namespace
} // namespace pim

int
main(int argc, char** argv)
{
    return pim::kl1::bench::runBenchMain(
        "microbench_cache", [&] { return pim::microbenchMain(argc, argv); });
}
